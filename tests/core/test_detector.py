"""Tests for the per-server vulnerability detector."""

import pytest

from repro.clock import SimulatedClock
from repro.core.detector import (
    DetectionOutcome,
    ProbeMethod,
    PROBE_USERNAMES,
    VulnerabilityDetector,
)
from repro.core.fingerprint import ExpansionBehavior
from repro.core.labels import LabelAllocator
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.smtp.client import SmtpClient
from repro.smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)
from repro.smtp.server import SmtpServer, SpfStack
from repro.smtp.transport import Network

BASE = "spf-test.dns-lab.org"


@pytest.fixture()
def env():
    clock = SimulatedClock()
    responder = SpfTestResponder(Name.from_text(BASE))
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register(BASE, responder)
    network = Network(clock=lambda: clock.now)
    labels = LabelAllocator(Name.from_text(BASE))
    detector = VulnerabilityDetector(
        SmtpClient(network),
        responder,
        labels,
        wait=lambda seconds: clock.advance_seconds(seconds),
        now=lambda: clock.now,
    )
    return clock, responder, resolver, network, detector, labels


def add_server(env, ip, behavior=None, timing=SpfTiming.ON_MAIL_FROM, policy=None):
    clock, responder, resolver, network, detector, labels = env
    stacks = [] if behavior is None else [SpfStack.named(behavior, timing)]
    server = SmtpServer(
        ip,
        policy=policy,
        spf_stacks=stacks,
        resolver=StubResolver(resolver, identity=ip, clock=lambda: clock.now),
    )
    network.register(server)
    return server


def detect(env, ip, **kwargs):
    detector, labels = env[4], env[5]
    suite = labels.new_suite()
    return detector.detect(ip, suite, **kwargs)


class TestOutcomes:
    def test_vulnerable_server_detected(self, env):
        add_server(env, "10.0.0.1", "vulnerable-libspf2")
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.VULNERABLE
        assert result.is_vulnerable
        assert ExpansionBehavior.VULNERABLE_LIBSPF2 in result.behaviors
        assert result.successful_method == ProbeMethod.NOMSG

    def test_compliant_server(self, env):
        add_server(env, "10.0.0.1", "rfc-compliant")
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.COMPLIANT
        assert not result.is_vulnerable

    @pytest.mark.parametrize(
        "behavior",
        ["no-expansion", "reversed-not-truncated", "truncated-not-reversed",
         "static-expansion"],
    )
    def test_erroneous_variants(self, env, behavior):
        add_server(env, "10.0.0.1", behavior)
        assert detect(env, "10.0.0.1").outcome == DetectionOutcome.ERRONEOUS

    def test_refused_server(self, env):
        add_server(env, "10.0.0.1", policy=ServerPolicy(refuse_connections=True))
        assert detect(env, "10.0.0.1").outcome == DetectionOutcome.REFUSED

    def test_absent_server_refused(self, env):
        assert detect(env, "10.255.0.1").outcome == DetectionOutcome.REFUSED

    def test_smtp_failure(self, env):
        add_server(env, "10.0.0.1", policy=ServerPolicy(failure_stage=FailureStage.BANNER))
        assert detect(env, "10.0.0.1").outcome == DetectionOutcome.SMTP_FAILED

    def test_no_spf_after_both_methods(self, env):
        add_server(env, "10.0.0.1")  # accepts everything, never validates
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.NO_SPF
        assert set(result.method_outcomes) == {ProbeMethod.NOMSG, ProbeMethod.BLANKMSG}

    def test_spf_measured_flag(self, env):
        add_server(env, "10.0.0.1", "rfc-compliant")
        assert detect(env, "10.0.0.1").outcome.spf_measured
        add_server(env, "10.0.0.2")
        assert not detect(env, "10.0.0.2").outcome.spf_measured


class TestBlankMsgFallback:
    def test_deferred_validator_needs_blankmsg(self, env):
        add_server(env, "10.0.0.1", "vulnerable-libspf2", SpfTiming.AFTER_MESSAGE)
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.VULNERABLE
        assert result.successful_method == ProbeMethod.BLANKMSG
        assert result.method_outcomes[ProbeMethod.NOMSG] == DetectionOutcome.NO_SPF

    def test_preferred_method_short_circuits(self, env):
        _, responder, *_ = env
        add_server(env, "10.0.0.1", "rfc-compliant", SpfTiming.AFTER_MESSAGE)
        result = detect(env, "10.0.0.1", preferred_method=ProbeMethod.BLANKMSG)
        assert result.outcome == DetectionOutcome.COMPLIANT
        assert list(result.method_outcomes) == [ProbeMethod.BLANKMSG]
        assert len(result.test_ids) == 1

    def test_message_stage_failure_counts_as_blankmsg_failure(self, env):
        add_server(env, "10.0.0.1", policy=ServerPolicy(failure_stage=FailureStage.MESSAGE))
        result = detect(env, "10.0.0.1")
        assert result.method_outcomes[ProbeMethod.NOMSG] == DetectionOutcome.NO_SPF
        assert result.method_outcomes[ProbeMethod.BLANKMSG] == DetectionOutcome.SMTP_FAILED


class TestUsernameIteration:
    def test_walks_username_list_until_accepted(self, env):
        policy = ServerPolicy(
            recipients=RecipientPolicy(
                accept_any=False, accepted_usernames=frozenset({"postmaster"})
            )
        )
        server = add_server(
            env, "10.0.0.1", "rfc-compliant", SpfTiming.AFTER_MESSAGE, policy=policy
        )
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.COMPLIANT
        # postmaster is the 5th recipient username tried.
        recipients = [t.recipient.split("@")[0] for t in result.transactions]
        assert "postmaster" in recipients
        assert recipients[0] == "mmj7yzdm0tbk"

    def test_random_username_tried_first(self, env):
        add_server(env, "10.0.0.1", "rfc-compliant")
        result = detect(env, "10.0.0.1")
        assert result.transactions[0].sender.startswith(PROBE_USERNAMES[0] + "@")

    def test_all_usernames_rejected_is_failure(self, env):
        policy = ServerPolicy(recipients=RecipientPolicy(accept_any=False))
        add_server(env, "10.0.0.1", policy=policy)
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.SMTP_FAILED
        assert len(result.transactions) == len(PROBE_USERNAMES)

    def test_spf_at_mail_from_conclusive_despite_rcpt_rejection(self, env):
        """The paper's observation: many conclusive NoMsg results came
        from transactions that were rejected before completing."""
        policy = ServerPolicy(recipients=RecipientPolicy(accept_any=False))
        add_server(env, "10.0.0.1", "vulnerable-libspf2", policy=policy)
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.VULNERABLE
        assert len(result.transactions) == 1  # no username iteration needed


class TestGreylisting:
    def test_greylisted_server_retried_and_measured(self, env):
        clock = env[0]
        policy = ServerPolicy(
            greylist=GreylistPolicy(enabled=True, retry_after_seconds=300)
        )
        add_server(env, "10.0.0.1", "rfc-compliant", SpfTiming.AFTER_MESSAGE, policy=policy)
        start = clock.now
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.COMPLIANT
        # The 8-minute greylist wait was honored on the simulated clock.
        assert (clock.now - start).total_seconds() >= 480

    def test_persistent_greylisting_gives_up(self, env):
        policy = ServerPolicy(
            greylist=GreylistPolicy(enabled=True, retry_after_seconds=10**9)
        )
        add_server(env, "10.0.0.1", policy=policy)
        result = detect(env, "10.0.0.1")
        assert result.outcome == DetectionOutcome.SMTP_FAILED


class TestEthicsIntegration:
    def test_reconnects_spaced_90_seconds(self, env):
        clock, detector = env[0], env[4]
        policy = ServerPolicy(recipients=RecipientPolicy(accept_any=False))
        add_server(env, "10.0.0.1", policy=policy)
        start = clock.now
        result = detect(env, "10.0.0.1")
        elapsed = (clock.now - start).total_seconds()
        # 14 usernames, each retry spaced >= 90 simulated seconds.
        assert elapsed >= 13 * 90

    def test_multiple_patterns_reported(self, env):
        clock, responder, resolver, network, detector, labels = env
        server = SmtpServer(
            "10.0.0.9",
            spf_stacks=[
                SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM),
                SpfStack.named("rfc-compliant", SpfTiming.ON_MAIL_FROM),
            ],
            resolver=StubResolver(resolver, identity="10.0.0.9", clock=lambda: clock.now),
        )
        network.register(server)
        result = detect(env, "10.0.0.9")
        assert result.multiple_patterns
        assert result.outcome == DetectionOutcome.VULNERABLE  # vulnerable wins
