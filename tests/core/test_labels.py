"""Tests for the unique label allocator."""

import pytest

from repro.core.labels import LabelAllocator
from repro.dns.name import Name
from repro.errors import SimulationError

BASE = Name.from_text("spf-test.dns-lab.org")


@pytest.fixture()
def allocator():
    return LabelAllocator(BASE)


class TestSuites:
    def test_suites_unique(self, allocator):
        suites = [allocator.new_suite() for _ in range(50)]
        assert len(set(suites)) == 50

    def test_suite_labels_are_dns_safe(self, allocator):
        suite = allocator.new_suite()
        assert suite.isalnum()
        assert suite == suite.lower()


class TestIds:
    def test_ids_unique_within_suite(self, allocator):
        suite = allocator.new_suite()
        ids = [allocator.new_id(suite, f"10.0.0.{i}") for i in range(200)]
        assert len(set(ids)) == 200

    def test_id_length_four_or_five(self, allocator):
        suite = allocator.new_suite()
        for i in range(100):
            assert len(allocator.new_id(suite, "10.0.0.1")) in (4, 5)

    def test_unknown_suite_rejected(self, allocator):
        with pytest.raises(SimulationError):
            allocator.new_id("never-created", "10.0.0.1")

    def test_ip_binding(self, allocator):
        suite = allocator.new_suite()
        test_id = allocator.new_id(suite, "10.1.2.3")
        assert allocator.ip_for(suite, test_id) == "10.1.2.3"
        assert allocator.ip_for(suite, "unknown") is None

    def test_suites_isolated(self, allocator):
        s1 = allocator.new_suite()
        s2 = allocator.new_suite()
        id1 = allocator.new_id(s1, "10.0.0.1")
        id2 = allocator.new_id(s2, "10.0.0.2")
        # Same counter position yields the same label text, but the suite
        # label disambiguates; bindings stay separate.
        assert allocator.ip_for(s1, id1) == "10.0.0.1"
        assert allocator.ip_for(s2, id2) == "10.0.0.2"


class TestMailFrom:
    def test_domain_format(self, allocator):
        suite = allocator.new_suite()
        test_id = allocator.new_id(suite, "10.0.0.1")
        domain = allocator.mail_from_domain(suite, test_id)
        assert domain == f"{test_id}.{suite}.spf-test.dns-lab.org"
