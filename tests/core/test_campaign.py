"""Tests for the measurement campaign orchestration."""

import datetime as dt

import pytest

from repro.clock import (
    INITIAL_MEASUREMENT,
    LONGITUDINAL_START,
    MEASUREMENTS_PAUSED,
    MEASUREMENTS_RESUMED,
    FINAL_MEASUREMENT,
    PRIVATE_NOTIFICATION,
)
from repro.core.campaign import DomainStatus
from repro.core.detector import DetectionOutcome
from repro.internet.population import DomainSet
from repro.simulation import Simulation


class TestTimeline:
    def test_round_dates_two_windows(self, session_sim):
        dates = session_sim.campaign.round_dates()
        assert dates[0] == LONGITUDINAL_START
        assert dates[-1] <= FINAL_MEASUREMENT
        gap = [d for d in dates if MEASUREMENTS_PAUSED < d < MEASUREMENTS_RESUMED]
        assert gap == []  # the December pause is respected
        deltas = {
            (b - a).days
            for a, b in zip(dates, dates[1:])
            if b <= MEASUREMENTS_PAUSED or a >= MEASUREMENTS_RESUMED
        }
        assert deltas == {2}  # every 2 days within each window

    def test_rounds_executed_on_schedule(self, session_result):
        dates = [r.date for r in session_result.rounds]
        assert dates == sorted(dates)
        assert dates[0] == LONGITUDINAL_START

    def test_initial_measurement_date(self, session_result):
        assert session_result.initial.date == INITIAL_MEASUREMENT


class TestResolution:
    def test_every_domain_resolved(self, session_sim, session_result):
        assert set(session_result.initial.domain_ips) == {
            d.name for d in session_sim.population.domains
        }

    def test_resolution_matches_fleet_ground_truth(self, session_sim, session_result):
        fleet = session_sim.fleet
        for name, ips in list(session_result.initial.domain_ips.items())[:300]:
            unit = fleet.unit_by_domain[name]
            assert set(ips) == set(unit.ips)

    def test_unique_ips_probed_once(self, session_result):
        records = session_result.initial.ip_records
        # Every record belongs to the ip it is keyed by.
        assert all(record.ip == ip for ip, record in records.items())


class TestInitialClassification:
    def test_domain_vulnerable_iff_any_ip_vulnerable(self, session_result):
        initial = session_result.initial
        vulnerable_ips = set(initial.vulnerable_ips())
        for name, status in initial.domain_status.items():
            ips = set(initial.domain_ips[name])
            if status == DomainStatus.VULNERABLE:
                assert ips & vulnerable_ips
            else:
                assert not ips & vulnerable_ips

    def test_vulnerability_matches_ground_truth(self, session_sim, session_result):
        """The detector must agree with the fleet's ground truth for every
        conclusively measured address."""
        fleet = session_sim.fleet
        for ip, record in session_result.initial.ip_records.items():
            unit = fleet.unit_by_ip[ip]
            if record.outcome == DetectionOutcome.VULNERABLE:
                assert unit.is_vulnerable
            elif record.outcome in (
                DetectionOutcome.COMPLIANT, DetectionOutcome.ERRONEOUS,
            ):
                assert not unit.is_vulnerable

    def test_refused_matches_ground_truth(self, session_sim, session_result):
        from repro.internet.mta_fleet import UnitCategory

        fleet = session_sim.fleet
        for ip, record in session_result.initial.ip_records.items():
            if fleet.unit_by_ip[ip].category == UnitCategory.REFUSE:
                assert record.outcome == DetectionOutcome.REFUSED

    def test_remeasurable_excludes_measured(self, session_result):
        initial = session_result.initial
        measured = {
            ip for ip, r in initial.ip_records.items() if r.outcome.spf_measured
        }
        assert not measured & set(initial.remeasurable_ips())


class TestLongitudinal:
    def test_only_tracked_ips_recontacted(self, session_sim, session_result):
        tracked = set(session_sim.campaign.tracked_ips())
        for round_ in session_result.rounds:
            assert set(round_.results) <= tracked

    def test_patched_servers_detected_in_later_rounds(self, session_sim, session_result):
        """Any unit whose patch plan fired mid-campaign must eventually be
        measured non-vulnerable (or become inconclusive)."""
        fleet = session_sim.fleet
        model = session_sim.patch_model
        last = session_result.rounds[-1]
        for unit in fleet.vulnerable_units():
            plan = model.plan_for(unit)
            if plan.patches and plan.patch_date < last.date - dt.timedelta(days=4):
                outcomes = [
                    last.results.get(ip)
                    for ip in unit.ips
                    if ip in last.results
                ]
                assert DetectionOutcome.VULNERABLE not in outcomes

    def test_notification_fired_at_the_right_time(self, session_sim, session_result):
        report = session_sim.notification_report
        assert report is not None
        assert report.sent_at == PRIVATE_NOTIFICATION
        assert report.sent > 0


class TestSnapshot:
    def test_snapshot_covers_all_initially_vulnerable(self, session_result):
        assert set(session_result.snapshot_status) == set(
            session_result.initial.vulnerable_domains()
        )

    def test_snapshot_statuses_valid(self, session_result):
        assert set(session_result.snapshot_status.values()) <= {
            DomainStatus.VULNERABLE, DomainStatus.PATCHED, DomainStatus.UNKNOWN,
        }

    def test_snapshot_agrees_with_ground_truth(self, session_sim, session_result):
        fleet = session_sim.fleet
        model = session_sim.patch_model
        for name, status in session_result.snapshot_status.items():
            unit = fleet.unit_by_domain[name]
            plan = model.plan_for(unit)
            if status == DomainStatus.PATCHED:
                assert plan.patches
            elif status == DomainStatus.VULNERABLE:
                assert not plan.patched_by(session_result.snapshot_date)


class TestEthicsCompliance:
    def test_concurrency_cap_never_exceeded(self, session_sim):
        assert session_sim.campaign.ethics.peak_concurrency <= 250

    def test_connection_volume_accounted(self, session_sim, session_result):
        opened = session_sim.campaign.ethics.connections_opened
        transactions = sum(
            len(r.result.transactions)
            for r in session_result.initial.ip_records.values()
        )
        assert opened >= transactions
