"""Tests for the operator-facing scanner API."""

import pytest

from repro.clock import SimulatedClock
from repro.core.detector import DetectionOutcome
from repro.core.scanner import SpfVulnerabilityScanner
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.errors import ResolutionError
from repro.internet.mta_fleet import PopulationDnsBackend
from repro.smtp import Network, ServerPolicy, SmtpServer, SpfStack, SpfTiming

BASE = "spf-test.dns-lab.org"


@pytest.fixture()
def setup():
    clock = SimulatedClock()
    responder = SpfTestResponder(Name.from_text(BASE))
    population_dns = PopulationDnsBackend()
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register(BASE, responder)
    resolver.register(Name.root(), population_dns)
    network = Network(clock=lambda: clock.now)

    def add_server(ip, behavior=None, timing=SpfTiming.ON_MAIL_FROM, **policy):
        stacks = [] if behavior is None else [SpfStack.named(behavior, timing)]
        network.register(
            SmtpServer(
                ip,
                policy=ServerPolicy(**policy) if policy else None,
                spf_stacks=stacks,
                resolver=StubResolver(resolver, identity=ip, clock=lambda: clock.now),
            )
        )

    add_server("10.0.0.1", "vulnerable-libspf2")
    add_server("10.0.0.2", "rfc-compliant")
    add_server("10.0.0.3", "no-expansion")
    add_server("10.0.0.4", refuse_connections=True)
    scanner = SpfVulnerabilityScanner(
        network,
        responder,
        clock=clock,
        resolver=StubResolver(resolver, identity="scanner", clock=lambda: clock.now),
    )
    return scanner, population_dns


class TestScanIps:
    def test_classification(self, setup):
        scanner, _ = setup
        report = scanner.scan_ips(["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"])
        assert report.scanned == 4
        assert report.vulnerable_ips() == ["10.0.0.1"]
        assert report.erroneous_ips() == ["10.0.0.3"]
        assert report.results["10.0.0.2"].outcome == DetectionOutcome.COMPLIANT
        assert report.results["10.0.0.4"].outcome == DetectionOutcome.REFUSED

    def test_duplicates_scanned_once(self, setup):
        scanner, _ = setup
        report = scanner.scan_ips(["10.0.0.1"] * 5)
        assert report.scanned == 1

    def test_outcome_counts(self, setup):
        scanner, _ = setup
        report = scanner.scan_ips(["10.0.0.1", "10.0.0.2"])
        counts = report.outcome_counts()
        assert counts[DetectionOutcome.VULNERABLE] == 1
        assert counts[DetectionOutcome.COMPLIANT] == 1

    def test_summary_names_vulnerable(self, setup):
        scanner, _ = setup
        report = scanner.scan_ips(["10.0.0.1", "10.0.0.2"])
        summary = report.summary()
        assert "10.0.0.1" in summary
        assert "vulnerable-libspf2" in summary
        assert "scanned 2" in summary


class TestScanDomains:
    def test_resolves_and_scans(self, setup):
        scanner, population_dns = setup
        population_dns.set_mx("victim.example", [(10, "mx.victim.example")])
        population_dns.set_a("mx.victim.example", ["10.0.0.1"])
        population_dns.set_mx("fine.example", [(10, "mx.fine.example")])
        population_dns.set_a("mx.fine.example", ["10.0.0.2"])
        report = scanner.scan_domains(["victim.example", "fine.example"])
        assert report.vulnerable_domains() == ["victim.example"]
        assert report.domain_ips["fine.example"] == ["10.0.0.2"]

    def test_shared_mx_scanned_once(self, setup):
        scanner, population_dns = setup
        for name in ("a.example", "b.example"):
            population_dns.set_mx(name, [(10, "shared.example")])
        population_dns.set_a("shared.example", ["10.0.0.1"])
        report = scanner.scan_domains(["a.example", "b.example"])
        assert report.scanned == 1
        assert report.vulnerable_domains() == ["a.example", "b.example"]

    def test_unresolvable_domain_empty(self, setup):
        scanner, _ = setup
        report = scanner.scan_domains(["ghost.example"])
        assert report.domain_ips["ghost.example"] == []
        assert report.scanned == 0

    def test_requires_resolver(self, setup):
        scanner, _ = setup
        scanner.resolver = None
        with pytest.raises(ResolutionError):
            scanner.scan_domains(["x.example"])


class TestEthics:
    def test_scanner_honors_ethics_limits(self, setup):
        scanner, _ = setup
        scanner.scan_ips(["10.0.0.1", "10.0.0.2"])
        assert scanner.ethics.peak_concurrency <= 250
        assert scanner.ethics.connections_opened >= 2
