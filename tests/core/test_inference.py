"""Tests for the inference rules (paper Section 7.6)."""

import datetime as dt

import pytest

from repro.clock import utc
from repro.core.campaign import (
    DomainStatus,
    InitialMeasurement,
    IpInitialRecord,
    MeasurementRound,
)
from repro.core.detector import DetectionOutcome, DetectionResult
from repro.core.inference import (
    InferenceEngine,
    InferredStatus,
    IpTimeline,
    Provenance,
)

T0 = utc(2021, 10, 11)
R1 = utc(2021, 10, 26)
R2 = utc(2021, 10, 28)
R3 = utc(2021, 10, 30)
R4 = utc(2021, 11, 1)


def make_initial(vulnerable_ips, domain_ips):
    records = {}
    for ips in domain_ips.values():
        for ip in ips:
            outcome = (
                DetectionOutcome.VULNERABLE
                if ip in vulnerable_ips
                else DetectionOutcome.COMPLIANT
            )
            records[ip] = IpInitialRecord(
                ip=ip,
                result=DetectionResult(ip=ip, suite="s", outcome=outcome),
            )
    status = {
        name: (
            DomainStatus.VULNERABLE
            if any(ip in vulnerable_ips for ip in ips)
            else DomainStatus.NOT_VULNERABLE
        )
        for name, ips in domain_ips.items()
    }
    return InitialMeasurement(
        date=T0, domain_ips=domain_ips, ip_records=records, domain_status=status
    )


def rounds(*specs):
    """specs: (date, {ip: outcome})"""
    return [MeasurementRound(date=date, results=dict(res)) for date, res in specs]


class TestIpTimeline:
    def test_rule1_vulnerable_inferred_backwards(self):
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R3, DetectionOutcome.VULNERABLE)
        status, provenance = timeline.status_at(R1)
        assert status == InferredStatus.VULNERABLE
        assert provenance == Provenance.INFERRED

    def test_rule2_patched_inferred_forwards(self):
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R1, DetectionOutcome.COMPLIANT)
        status, provenance = timeline.status_at(R4)
        assert status == InferredStatus.PATCHED
        assert provenance == Provenance.INFERRED

    def test_measured_beats_inferred(self):
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R1, DetectionOutcome.VULNERABLE)
        timeline.observe(R3, DetectionOutcome.VULNERABLE)
        status, provenance = timeline.status_at(R1)
        assert provenance == Provenance.MEASURED

    def test_gap_between_vulnerable_and_patched_inconclusive(self):
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R1, DetectionOutcome.VULNERABLE)
        timeline.observe(R4, DetectionOutcome.COMPLIANT)
        status, provenance = timeline.status_at(R2)
        assert status == InferredStatus.INCONCLUSIVE

    def test_erroneous_counts_as_patched(self):
        # Switching to a different (broken but not vulnerable) SPF library
        # still ends vulnerability.
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R2, DetectionOutcome.ERRONEOUS)
        status, _ = timeline.status_at(R3)
        assert status == InferredStatus.PATCHED

    def test_unmeasured_rounds_with_no_observations(self):
        timeline = IpTimeline("10.0.0.1")
        status, provenance = timeline.status_at(R1)
        assert status == InferredStatus.INCONCLUSIVE
        assert provenance == Provenance.NONE

    def test_failed_round_is_not_an_observation(self):
        timeline = IpTimeline("10.0.0.1")
        timeline.observe(R1, DetectionOutcome.VULNERABLE)
        timeline.observe(R2, DetectionOutcome.SMTP_FAILED)
        status, provenance = timeline.status_at(R2)
        # Falls back to rule 1 via the *later*... no later vulnerable here,
        # so only the R1 observation bounds it: R2 is past last_vulnerable.
        assert status == InferredStatus.INCONCLUSIVE


class TestEngineIpLevel:
    def test_initial_measurement_seeds_timelines(self):
        initial = make_initial({"10.0.0.1"}, {"a.com": ["10.0.0.1"]})
        engine = InferenceEngine(initial, [])
        status, _ = engine.ip_status("10.0.0.1", T0)
        assert status == InferredStatus.VULNERABLE

    def test_untracked_ip_inconclusive(self):
        initial = make_initial({"10.0.0.1"}, {"a.com": ["10.0.0.1"]})
        engine = InferenceEngine(initial, [])
        status, _ = engine.ip_status("10.9.9.9", T0)
        assert status == InferredStatus.INCONCLUSIVE

    def test_round_observations_applied(self):
        initial = make_initial({"10.0.0.1"}, {"a.com": ["10.0.0.1"]})
        engine = InferenceEngine(
            initial,
            rounds(
                (R1, {"10.0.0.1": DetectionOutcome.VULNERABLE}),
                (R2, {"10.0.0.1": DetectionOutcome.COMPLIANT}),
            ),
        )
        assert engine.ip_status("10.0.0.1", R1)[0] == InferredStatus.VULNERABLE
        assert engine.ip_status("10.0.0.1", R2)[0] == InferredStatus.PATCHED
        assert engine.ip_status("10.0.0.1", R3)[0] == InferredStatus.PATCHED


class TestEngineDomainLevel:
    def setup_engine(self):
        initial = make_initial(
            {"10.0.0.1", "10.0.0.2"},
            {"a.com": ["10.0.0.1", "10.0.0.2"], "b.com": ["10.0.0.2"]},
        )
        return InferenceEngine(
            initial,
            rounds(
                (R1, {
                    "10.0.0.1": DetectionOutcome.COMPLIANT,
                    "10.0.0.2": DetectionOutcome.VULNERABLE,
                }),
                (R2, {
                    "10.0.0.1": DetectionOutcome.COMPLIANT,
                    "10.0.0.2": DetectionOutcome.COMPLIANT,
                }),
            ),
        )

    def test_domain_vulnerable_while_any_ip_vulnerable(self):
        engine = self.setup_engine()
        assert engine.domain_status("a.com", R1)[0] == InferredStatus.VULNERABLE

    def test_domain_patched_when_all_ips_patched(self):
        engine = self.setup_engine()
        assert engine.domain_status("a.com", R2)[0] == InferredStatus.PATCHED

    def test_domain_with_single_ip_follows_it(self):
        engine = self.setup_engine()
        assert engine.domain_status("b.com", R1)[0] == InferredStatus.VULNERABLE
        assert engine.domain_status("b.com", R2)[0] == InferredStatus.PATCHED

    def test_unknown_domain_inconclusive(self):
        engine = self.setup_engine()
        assert engine.domain_status("zz.com", R1)[0] == InferredStatus.INCONCLUSIVE

    def test_only_initially_vulnerable_ips_considered(self):
        initial = make_initial(
            {"10.0.0.1"}, {"a.com": ["10.0.0.1", "10.0.0.5"]}
        )
        engine = InferenceEngine(initial, [])
        assert engine.domain_vulnerable_ips["a.com"] == ["10.0.0.1"]


class TestSummaries:
    def test_counts_partition(self):
        initial = make_initial(
            {"10.0.0.1", "10.0.0.2", "10.0.0.3"},
            {"a.com": ["10.0.0.1"], "b.com": ["10.0.0.2"], "c.com": ["10.0.0.3"]},
        )
        engine = InferenceEngine(
            initial,
            rounds(
                (R1, {
                    "10.0.0.1": DetectionOutcome.VULNERABLE,
                    "10.0.0.2": DetectionOutcome.SMTP_FAILED,
                }),
                (R2, {
                    "10.0.0.1": DetectionOutcome.COMPLIANT,
                    "10.0.0.3": DetectionOutcome.VULNERABLE,
                }),
            ),
        )
        for summary in engine.round_summaries_ips():
            assert summary.total == 3
            assert summary.measured + summary.inferred + summary.inconclusive == 3
            assert summary.vulnerable + summary.patched <= 3

    def test_rule1_shows_in_first_round(self):
        initial = make_initial({"10.0.0.1"}, {"a.com": ["10.0.0.1"]})
        engine = InferenceEngine(
            initial,
            rounds(
                (R1, {}),  # missed
                (R2, {"10.0.0.1": DetectionOutcome.VULNERABLE}),
            ),
        )
        first, second = engine.round_summaries_ips()
        assert first.inferred == 1  # rule 1 backfills R1
        assert second.measured == 1

    def test_vulnerable_fraction(self):
        initial = make_initial(
            {"10.0.0.1", "10.0.0.2"},
            {"a.com": ["10.0.0.1"], "b.com": ["10.0.0.2"]},
        )
        engine = InferenceEngine(
            initial,
            rounds(
                (R1, {
                    "10.0.0.1": DetectionOutcome.VULNERABLE,
                    "10.0.0.2": DetectionOutcome.COMPLIANT,
                }),
            ),
        )
        summary = engine.round_summaries_ips()[0]
        assert summary.vulnerable_fraction == 0.5

    def test_domain_summaries_filterable(self):
        engine = TestEngineDomainLevel().setup_engine()
        only_b = engine.round_summaries_domains(["b.com"])
        assert all(s.total == 1 for s in only_b)
