"""Tests for SMTP protocol primitives."""

import pytest

from repro.errors import SmtpProtocolError
from repro.smtp.protocol import (
    Command,
    Reply,
    ReplyCode,
    address_domain,
    parse_command_line,
    parse_path,
)


class TestParseCommandLine:
    @pytest.mark.parametrize(
        "line,command,argument",
        [
            ("HELO mta.example.com", Command.HELO, "mta.example.com"),
            ("EHLO mta.example.com", Command.EHLO, "mta.example.com"),
            ("MAIL FROM:<u@d.com>", Command.MAIL, "FROM:<u@d.com>"),
            ("RCPT TO:<x@y.org>", Command.RCPT, "TO:<x@y.org>"),
            ("DATA", Command.DATA, ""),
            ("QUIT", Command.QUIT, ""),
            ("rset", Command.RSET, ""),
            ("noop ignored", Command.NOOP, "ignored"),
        ],
    )
    def test_parse(self, line, command, argument):
        assert parse_command_line(line) == (command, argument)

    def test_unknown_verb(self):
        with pytest.raises(SmtpProtocolError):
            parse_command_line("VRFY user")

    def test_empty_line(self):
        with pytest.raises(SmtpProtocolError):
            parse_command_line("   ")


class TestParsePath:
    def test_angle_brackets_stripped(self):
        assert parse_path("FROM:<user@example.com>", "FROM") == "user@example.com"

    def test_without_brackets(self):
        assert parse_path("FROM:user@example.com", "FROM") == "user@example.com"

    def test_empty_reverse_path(self):
        assert parse_path("FROM:<>", "FROM") == ""

    def test_case_insensitive_keyword(self):
        assert parse_path("from:<a@b.c>", "FROM") == "a@b.c"

    def test_wrong_keyword_rejected(self):
        with pytest.raises(SmtpProtocolError):
            parse_path("TO:<a@b.c>", "FROM")


class TestAddressDomain:
    def test_domain_extracted_lowercase(self):
        assert address_domain("User@EXAMPLE.com") == "example.com"

    def test_no_at_sign(self):
        assert address_domain("postmaster") is None

    def test_empty_domain(self):
        assert address_domain("user@") is None


class TestReply:
    def test_categories(self):
        assert Reply(ReplyCode.OK).is_positive
        assert Reply(ReplyCode.START_MAIL_INPUT).is_intermediate
        assert Reply(ReplyCode.MAILBOX_BUSY).is_transient_failure
        assert Reply(ReplyCode.MAILBOX_UNAVAILABLE).is_permanent_failure
        assert Reply(ReplyCode.SERVICE_UNAVAILABLE).is_transient_failure

    def test_to_text(self):
        assert Reply(ReplyCode.OK, "done").to_text() == "250 done"
        assert Reply(ReplyCode.OK).to_text() == "250"
