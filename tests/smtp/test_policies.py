"""Tests for server policy semantics."""

import pytest

from repro.smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)


class TestSpfTiming:
    def test_nomsg_triggers(self):
        assert SpfTiming.ON_MAIL_FROM.triggered_by_nomsg
        assert SpfTiming.ON_DATA_COMMAND.triggered_by_nomsg
        assert not SpfTiming.AFTER_MESSAGE.triggered_by_nomsg
        assert not SpfTiming.NEVER.triggered_by_nomsg

    def test_blankmsg_triggers_everything_but_never(self):
        for timing in SpfTiming:
            expected = timing != SpfTiming.NEVER
            assert timing.triggered_by_blankmsg == expected

    def test_blankmsg_covers_nomsg(self):
        """Anything NoMsg can elicit, BlankMsg can too — the reason the
        paper's fallback ordering is sound."""
        for timing in SpfTiming:
            if timing.triggered_by_nomsg:
                assert timing.triggered_by_blankmsg


class TestRecipientPolicy:
    def test_accept_any(self):
        assert RecipientPolicy(accept_any=True).accepts("whoever")

    def test_username_list_case_insensitive(self):
        policy = RecipientPolicy(
            accept_any=False, accepted_usernames=frozenset({"postmaster"})
        )
        assert policy.accepts("Postmaster")
        assert not policy.accepts("abuse")

    def test_reject_all(self):
        assert not RecipientPolicy(accept_any=False).accepts("anyone")


class TestServerPolicy:
    def test_defaults_are_benign(self):
        policy = ServerPolicy()
        assert not policy.refuse_connections
        assert policy.failure_stage == FailureStage.NONE
        assert not policy.greylist.enabled
        assert policy.blacklists_after_probes is None
        assert policy.flaky_rate == 0.0
        assert not policy.enforce_dmarc

    def test_copy_is_independent(self):
        original = ServerPolicy(refuse_connections=True)
        duplicate = original.copy()
        duplicate.refuse_connections = False
        assert original.refuse_connections

    def test_greylist_policy_window(self):
        greylist = GreylistPolicy(enabled=True, retry_after_seconds=300)
        assert greylist.retry_after_seconds == 300
