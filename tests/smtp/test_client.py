"""Tests for the probing SMTP client (NoMsg / BlankMsg)."""

import pytest

from repro.clock import SimulatedClock
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.smtp.client import SmtpClient, TransactionKind, TransactionStatus
from repro.smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)
from repro.smtp.server import SmtpServer, SpfStack
from repro.smtp.transport import Network

BASE = "spf-test.dns-lab.org"
SENDER = "noreply@ab1.s1.spf-test.dns-lab.org"


@pytest.fixture()
def env():
    clock = SimulatedClock()
    responder = SpfTestResponder(Name.from_text(BASE))
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register(BASE, responder)
    network = Network(clock=lambda: clock.now)
    client = SmtpClient(network)
    return clock, responder, resolver, network, client


def add_server(env, ip, behavior=None, timing=SpfTiming.ON_MAIL_FROM, policy=None):
    clock, responder, resolver, network, client = env
    stacks = [] if behavior is None else [SpfStack.named(behavior, timing)]
    server = SmtpServer(
        ip,
        policy=policy,
        spf_stacks=stacks,
        resolver=StubResolver(resolver, identity=ip, clock=lambda: clock.now),
    )
    network.register(server)
    return server


def probe(env, ip, kind=TransactionKind.NOMSG, sender=SENDER):
    client = env[4]
    return client.probe(ip, sender=sender, recipient="x@y.example", kind=kind)


class TestNoMsg:
    def test_completes_without_delivery(self, env):
        server = add_server(env, "10.0.0.1")
        result = probe(env, "10.0.0.1")
        assert result.status == TransactionStatus.COMPLETED
        assert result.reached_data
        assert not server.inbox  # NoMsg guarantees no delivery

    def test_refused(self, env):
        add_server(env, "10.0.0.1", policy=ServerPolicy(refuse_connections=True))
        assert probe(env, "10.0.0.1").status == TransactionStatus.REFUSED

    def test_no_host(self, env):
        assert probe(env, "10.9.9.9").status == TransactionStatus.REFUSED

    @pytest.mark.parametrize(
        "stage",
        [FailureStage.BANNER, FailureStage.HELO, FailureStage.MAIL_FROM, FailureStage.DATA],
    )
    def test_failures(self, env, stage):
        add_server(env, "10.0.0.1", policy=ServerPolicy(failure_stage=stage))
        assert probe(env, "10.0.0.1").status == TransactionStatus.FAILED

    def test_greylisted(self, env):
        add_server(
            env, "10.0.0.1", policy=ServerPolicy(greylist=GreylistPolicy(enabled=True))
        )
        assert probe(env, "10.0.0.1").status == TransactionStatus.GREYLISTED

    def test_rcpt_rejected(self, env):
        add_server(
            env,
            "10.0.0.1",
            policy=ServerPolicy(recipients=RecipientPolicy(accept_any=False)),
        )
        assert probe(env, "10.0.0.1").status == TransactionStatus.RCPT_REJECTED

    def test_spf_queries_from_mail_from_validator(self, env):
        _, responder, *_ = env
        add_server(env, "10.0.0.1", behavior="vulnerable-libspf2")
        result = probe(env, "10.0.0.1")
        # Strict -all policy: the server rejects at RCPT...
        assert result.status == TransactionStatus.RCPT_REJECTED
        # ...but the fingerprint queries already happened.
        assert responder.log.expansion_prefixes("s1", "ab1")

    def test_no_queries_from_deferred_validator(self, env):
        _, responder, *_ = env
        add_server(env, "10.0.0.1", behavior="rfc-compliant", timing=SpfTiming.AFTER_MESSAGE)
        result = probe(env, "10.0.0.1")
        assert result.status == TransactionStatus.COMPLETED
        assert len(responder.log) == 0


class TestBlankMsg:
    def test_elicits_deferred_validation(self, env):
        _, responder, *_ = env
        add_server(env, "10.0.0.1", behavior="rfc-compliant", timing=SpfTiming.AFTER_MESSAGE)
        result = probe(env, "10.0.0.1", kind=TransactionKind.BLANKMSG)
        assert responder.log.saw_policy_fetch("s1", "ab1")
        # The blank email is rejected by the -all policy, not delivered.
        assert result.status == TransactionStatus.FAILED

    def test_delivers_blank_to_non_validating_server(self, env):
        server = add_server(env, "10.0.0.1")
        server.spf_stacks.clear()
        result = probe(env, "10.0.0.1", kind=TransactionKind.BLANKMSG)
        assert result.status == TransactionStatus.COMPLETED
        assert len(server.inbox) == 1
        assert server.inbox[0].data == ""  # entirely empty message

    def test_message_stage_failure(self, env):
        add_server(
            env, "10.0.0.1", policy=ServerPolicy(failure_stage=FailureStage.MESSAGE)
        )
        result = probe(env, "10.0.0.1", kind=TransactionKind.BLANKMSG)
        assert result.status == TransactionStatus.FAILED


class TestAccounting:
    def test_replies_recorded(self, env):
        add_server(env, "10.0.0.1")
        result = probe(env, "10.0.0.1")
        assert [int(r.code) for r in result.replies] == [220, 250, 250, 250, 354]

    def test_network_counters(self, env):
        clock, responder, resolver, network, client = env
        add_server(env, "10.0.0.1")
        probe(env, "10.0.0.1")
        probe(env, "10.9.9.9")
        assert network.connection_attempts == 2
        assert network.connections_established == 1

    def test_duplicate_registration_rejected(self, env):
        from repro.errors import SmtpError

        add_server(env, "10.0.0.1")
        with pytest.raises(SmtpError):
            add_server(env, "10.0.0.1")
