"""Tests for the MTA state machine."""

import datetime as dt

import pytest

from repro.clock import SimulatedClock
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.errors import SmtpProtocolError
from repro.smtp.policies import (
    FailureStage,
    GreylistPolicy,
    RecipientPolicy,
    ServerPolicy,
    SpfTiming,
)
from repro.smtp.protocol import ReplyCode
from repro.smtp.server import SmtpServer, SpfStack

BASE = "spf-test.dns-lab.org"
SENDER = "noreply@ab1.s1.spf-test.dns-lab.org"


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def dns(clock):
    responder = SpfTestResponder(Name.from_text(BASE))
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register(BASE, responder)
    return responder, resolver


def make_server(clock, dns, behavior=None, timing=SpfTiming.ON_MAIL_FROM, policy=None):
    responder, resolver = dns
    stacks = [] if behavior is None else [SpfStack.named(behavior, timing)]
    return SmtpServer(
        "10.0.0.1",
        policy=policy,
        spf_stacks=stacks,
        resolver=StubResolver(resolver, identity="10.0.0.1", clock=lambda: clock.now),
    )


def dialogue(session, *lines):
    return [session.command(line) for line in lines]


class TestHappyPath:
    def test_full_transaction_delivers(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("198.51.100.7", clock.now)
        assert session.banner().code == ReplyCode.READY
        replies = dialogue(
            session,
            "EHLO probe.example",
            f"MAIL FROM:<{SENDER}>",
            "RCPT TO:<postmaster@dest.example>",
            "DATA",
        )
        assert [r.code for r in replies] == [
            ReplyCode.OK, ReplyCode.OK, ReplyCode.OK, ReplyCode.START_MAIL_INPUT,
        ]
        final = session.send_message("Subject: hi\n\nbody")
        assert final.code == ReplyCode.OK
        assert len(server.inbox) == 1
        assert server.inbox[0].sender == SENDER

    def test_quit_closes(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        reply = session.command("QUIT")
        assert reply.code == ReplyCode.CLOSING
        assert session.closed

    def test_rset_clears_transaction(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        session.command("RSET")
        reply = session.command("RCPT TO:<a@b.c>")
        assert reply.code == ReplyCode.BAD_SEQUENCE


class TestSequencing:
    def test_mail_before_helo_rejected(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        assert session.command(f"MAIL FROM:<{SENDER}>").code == ReplyCode.BAD_SEQUENCE

    def test_rcpt_before_mail_rejected(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        session.command("EHLO x")
        assert session.command("RCPT TO:<a@b.c>").code == ReplyCode.BAD_SEQUENCE

    def test_data_before_rcpt_rejected(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        assert session.command("DATA").code == ReplyCode.BAD_SEQUENCE

    def test_message_without_354_rejected(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        with pytest.raises(SmtpProtocolError):
            session.send_message("x")

    def test_command_after_close_rejected(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        session.command("QUIT")
        with pytest.raises(SmtpProtocolError):
            session.command("NOOP")

    def test_unknown_command_is_500(self, clock, dns):
        server = make_server(clock, dns)
        session = server.accept("c", clock.now)
        session.banner()
        assert session.command("VRFY root").code == ReplyCode.SYNTAX_ERROR


class TestFailureStages:
    @pytest.mark.parametrize(
        "stage,step",
        [
            (FailureStage.BANNER, 0),
            (FailureStage.HELO, 1),
            (FailureStage.MAIL_FROM, 2),
            (FailureStage.RCPT_TO, 3),
            (FailureStage.DATA, 4),
        ],
    )
    def test_failure_at_each_stage(self, clock, dns, stage, step):
        policy = ServerPolicy(failure_stage=stage)
        server = make_server(clock, dns, policy=policy)
        session = server.accept("c", clock.now)
        replies = [session.banner()]
        if step >= 1 and replies[-1].is_positive:
            replies.append(session.command("EHLO x"))
        if step >= 2 and replies[-1].is_positive:
            replies.append(session.command(f"MAIL FROM:<{SENDER}>"))
        if step >= 3 and replies[-1].is_positive:
            replies.append(session.command("RCPT TO:<a@b.c>"))
        if step >= 4 and replies[-1].is_positive:
            replies.append(session.command("DATA"))
        assert replies[-1].is_transient_failure or replies[-1].is_permanent_failure
        assert session.closed

    def test_message_stage_failure(self, clock, dns):
        policy = ServerPolicy(failure_stage=FailureStage.MESSAGE)
        server = make_server(clock, dns, policy=policy)
        session = server.accept("c", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>", "RCPT TO:<a@b.c>", "DATA")
        reply = session.send_message("")
        assert reply.code == ReplyCode.TRANSACTION_FAILED
        assert not server.inbox


class TestGreylisting:
    def policy(self):
        return ServerPolicy(greylist=GreylistPolicy(enabled=True, retry_after_seconds=300))

    def run_rcpt(self, server, clock):
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        return session.command("RCPT TO:<a@b.c>")

    def test_first_attempt_greylisted(self, clock, dns):
        server = make_server(clock, dns, policy=self.policy())
        assert self.run_rcpt(server, clock).code == ReplyCode.MAILBOX_BUSY

    def test_retry_too_soon_still_greylisted(self, clock, dns):
        server = make_server(clock, dns, policy=self.policy())
        self.run_rcpt(server, clock)
        clock.advance(dt.timedelta(seconds=60))
        assert self.run_rcpt(server, clock).code == ReplyCode.MAILBOX_BUSY

    def test_retry_after_window_accepted(self, clock, dns):
        server = make_server(clock, dns, policy=self.policy())
        self.run_rcpt(server, clock)
        clock.advance(dt.timedelta(minutes=8))
        assert self.run_rcpt(server, clock).code == ReplyCode.OK


class TestRecipients:
    def test_restricted_usernames(self, clock, dns):
        policy = ServerPolicy(
            recipients=RecipientPolicy(
                accept_any=False, accepted_usernames=frozenset({"postmaster"})
            )
        )
        server = make_server(clock, dns, policy=policy)
        session = server.accept("c", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        assert session.command("RCPT TO:<nobody@d>").code == ReplyCode.MAILBOX_UNAVAILABLE
        assert session.command("RCPT TO:<postmaster@d>").code == ReplyCode.OK


class TestBlacklisting:
    def test_blacklists_after_n_sessions(self, clock, dns):
        policy = ServerPolicy(blacklists_after_probes=2)
        server = make_server(clock, dns, policy=policy)
        for _ in range(2):
            session = server.accept("c", clock.now)
            assert session.banner().code == ReplyCode.READY
            session.abort()
        session = server.accept("c", clock.now)
        assert session.banner().code == ReplyCode.SERVICE_UNAVAILABLE
        assert session.closed


class TestSpfIntegration:
    def test_on_mail_from_validates_and_rejects_at_rcpt(self, clock, dns):
        responder, _ = dns
        server = make_server(clock, dns, behavior="rfc-compliant")
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        replies = dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        assert replies[-1].code == ReplyCode.OK
        # Our measurement policy -all fails the client, enforced at RCPT.
        assert session.command("RCPT TO:<a@b.c>").code == ReplyCode.MAILBOX_UNAVAILABLE
        assert responder.log.saw_policy_fetch("s1", "ab1")

    def test_after_message_timing_defers_lookup(self, clock, dns):
        responder, _ = dns
        server = make_server(
            clock, dns, behavior="rfc-compliant", timing=SpfTiming.AFTER_MESSAGE
        )
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>", "RCPT TO:<a@b.c>", "DATA")
        assert len(responder.log) == 0
        reply = session.send_message("")
        assert reply.code == ReplyCode.TRANSACTION_FAILED  # SPF -all
        assert responder.log.saw_policy_fetch("s1", "ab1")
        assert not server.inbox

    def test_multiple_stacks_both_query(self, clock, dns):
        responder, resolver = dns
        server = SmtpServer(
            "10.0.0.2",
            spf_stacks=[
                SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM),
                SpfStack.named("rfc-compliant", SpfTiming.AFTER_MESSAGE),
            ],
            resolver=StubResolver(resolver, identity="10.0.0.2", clock=lambda: clock.now),
        )
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        dialogue(session, "EHLO x", f"MAIL FROM:<{SENDER}>")
        session.command("RCPT TO:<a@b.c>")
        prefixes = {str(p) for p in responder.log.expansion_prefixes("s1", "ab1")}
        assert "org.org.dns-lab.spf-test.s1.ab1" in prefixes

    def test_patch_swaps_vulnerable_stack(self, clock, dns):
        server = make_server(clock, dns, behavior="vulnerable-libspf2")
        assert server.is_vulnerable
        assert server.patch()
        assert not server.is_vulnerable
        assert server.spf_stacks[0].behavior.name == "patched-libspf2"

    def test_patch_noop_without_vulnerable_stack(self, clock, dns):
        server = make_server(clock, dns, behavior="rfc-compliant")
        assert not server.patch()

    def test_empty_sender_uses_helo_domain(self, clock, dns):
        responder, _ = dns
        server = make_server(clock, dns, behavior="rfc-compliant")
        session = server.accept("198.51.100.7", clock.now)
        session.banner()
        dialogue(session, "EHLO zz9.s1.spf-test.dns-lab.org", "MAIL FROM:<>")
        assert responder.log.saw_policy_fetch("s1", "zz9")

    def test_validates_spf_property(self, clock, dns):
        assert make_server(clock, dns, behavior="rfc-compliant").validates_spf
        assert not make_server(clock, dns).validates_spf
