"""Failure injection: the system must degrade cleanly, never wrongly.

A measurement system's cardinal sin is misclassification under partial
failure — a flaky DNS path or a dying server must yield *inconclusive*
results, never a wrong vulnerable/patched verdict.
"""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.clock import SimulatedClock
from repro.core.detector import DetectionOutcome, VulnerabilityDetector
from repro.core.labels import LabelAllocator
from repro.dns import CachingResolver, Message, Name, Rcode, RRType, SpfTestResponder, StubResolver
from repro.dns.server import DnsBackend
from repro.dns.wire import from_wire
from repro.errors import ReproError, ResolutionError, WireFormatError
from repro.smtp import Network, SmtpClient, SmtpServer, SpfStack, SpfTiming
from repro.spf import SpfEvaluator, SpfResult


class FlakyBackend(DnsBackend):
    """Wraps a backend; SERVFAILs every query while ``broken`` is True."""

    def __init__(self, inner):
        self.inner = inner
        self.broken = False

    def query(self, message, *, source="", now=None):
        if self.broken:
            return message.make_response(Rcode.SERVFAIL)
        return self.inner.query(message, source=source, now=now)


@pytest.fixture()
def env():
    clock = SimulatedClock()
    responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
    flaky = FlakyBackend(responder)
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register("spf-test.dns-lab.org", flaky)
    network = Network(clock=lambda: clock.now)
    server = SmtpServer(
        "10.0.0.1",
        spf_stacks=[SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM)],
        resolver=StubResolver(resolver, identity="10.0.0.1", clock=lambda: clock.now),
    )
    network.register(server)
    labels = LabelAllocator(Name.from_text("spf-test.dns-lab.org"))
    detector = VulnerabilityDetector(
        SmtpClient(network),
        responder,
        labels,
        wait=lambda s: clock.advance_seconds(s),
        now=lambda: clock.now,
    )
    return clock, responder, flaky, detector, labels


class TestDnsOutage:
    def test_outage_never_misclassifies(self, env):
        clock, responder, flaky, detector, labels = env
        flaky.broken = True
        result = detector.detect("10.0.0.1", labels.new_suite())
        # The SPF evaluator gets TEMPERROR; no queries reach the log, so
        # the verdict must be inconclusive-flavored, never 'compliant'.
        assert result.outcome in (
            DetectionOutcome.NO_SPF,
            DetectionOutcome.SMTP_FAILED,
            DetectionOutcome.INCONCLUSIVE,
        )
        assert not result.behaviors

    def test_recovery_after_outage(self, env):
        clock, responder, flaky, detector, labels = env
        flaky.broken = True
        detector.detect("10.0.0.1", labels.new_suite())
        flaky.broken = False
        clock.advance_seconds(120)
        result = detector.detect("10.0.0.1", labels.new_suite())
        assert result.outcome == DetectionOutcome.VULNERABLE


class TestEvaluatorUnderFailure:
    def test_temperror_on_servfail(self):
        clock = SimulatedClock()
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        flaky = FlakyBackend(responder)
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("spf-test.dns-lab.org", flaky)
        evaluator = SpfEvaluator(StubResolver(resolver, clock=lambda: clock.now))
        flaky.broken = True
        outcome = evaluator.check_host(
            ipaddress.IPv4Address("198.51.100.7"),
            "ab1.s1.spf-test.dns-lab.org",
            "noreply@ab1.s1.spf-test.dns-lab.org",
        )
        assert outcome.result == SpfResult.TEMPERROR

    def test_mid_evaluation_failure(self):
        """The TXT fetch succeeds, then the A lookups start failing."""
        clock = SimulatedClock()
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))

        class FailAfterFirst(DnsBackend):
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def query(self, message, *, source="", now=None):
                self.calls += 1
                if self.calls > 1:
                    return message.make_response(Rcode.SERVFAIL)
                return self.inner.query(message, source=source, now=now)

        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("spf-test.dns-lab.org", FailAfterFirst(responder))
        evaluator = SpfEvaluator(StubResolver(resolver, clock=lambda: clock.now))
        outcome = evaluator.check_host(
            ipaddress.IPv4Address("198.51.100.7"),
            "ab1.s1.spf-test.dns-lab.org",
            "noreply@ab1.s1.spf-test.dns-lab.org",
        )
        assert outcome.result == SpfResult.TEMPERROR


class TestWireFuzz:
    @given(st.binary(min_size=0, max_size=200))
    def test_from_wire_never_raises_unexpected(self, data):
        """Arbitrary bytes either decode or raise WireFormatError —
        nothing else (no IndexError, no infinite loop)."""
        try:
            from_wire(data)
        except WireFormatError:
            pass
        except ValueError:
            pass  # enum values outside the modeled sets

    @given(st.binary(min_size=12, max_size=64))
    def test_decoded_messages_are_well_formed(self, data):
        try:
            message = from_wire(data)
        except (WireFormatError, ValueError):
            return
        assert isinstance(message.id, int)


class TestErrorHierarchy:
    def test_all_domain_errors_are_repro_errors(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, ReproError) or obj is ReproError
