"""Shared fixtures.

The expensive artifacts — a fully built simulation and a completed
campaign — are session-scoped: many test modules assert different
properties of the same run, which both mirrors how the paper's analysis
reuses one measurement and keeps the suite fast.
"""

from __future__ import annotations

import pytest

from repro.api import RunConfig
from repro.clock import SimulatedClock
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.simulation import Simulation
from repro.smtp import Network, SmtpClient, SmtpServer, SpfStack, SpfTiming

BASE = "spf-test.dns-lab.org"


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def measurement_dns(clock):
    """(responder, caching resolver) for the measurement zone."""
    responder = SpfTestResponder(Name.from_text(BASE))
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register(BASE, responder)
    return responder, resolver


def make_server(ip, behavior, timing, resolver, clock, **policy_kwargs):
    """One simulated MTA with a single SPF stack."""
    from repro.smtp.policies import ServerPolicy

    stacks = [] if behavior is None else [SpfStack.named(behavior, timing)]
    return SmtpServer(
        ip,
        policy=ServerPolicy(**policy_kwargs) if policy_kwargs else None,
        spf_stacks=stacks,
        resolver=StubResolver(resolver, identity=ip, clock=lambda: clock.now),
    )


@pytest.fixture()
def mini_network(clock, measurement_dns):
    """A network with one server per SPF behavior, plus special servers."""
    responder, resolver = measurement_dns
    network = Network(clock=lambda: clock.now)
    behaviors = {
        "10.0.0.1": "vulnerable-libspf2",
        "10.0.0.2": "rfc-compliant",
        "10.0.0.3": "patched-libspf2",
        "10.0.0.4": "no-expansion",
        "10.0.0.5": "reversed-not-truncated",
        "10.0.0.6": "truncated-not-reversed",
        "10.0.0.7": "static-expansion",
    }
    for ip, behavior in behaviors.items():
        network.register(
            make_server(ip, behavior, SpfTiming.ON_MAIL_FROM, resolver, clock)
        )
    return network, responder, resolver


@pytest.fixture(scope="session")
def session_sim():
    """One fully run campaign shared by analysis/shape tests."""
    sim = Simulation.build(config=RunConfig(scale=0.01, seed=20211011))
    sim.run()
    return sim


@pytest.fixture(scope="session")
def session_result(session_sim):
    return session_sim.run()
