"""Tests for the Figure 2-8 builders and the notification funnel."""

import pytest

from repro.analysis import (
    build_figure2,
    build_figure3,
    build_figure4,
    build_figure5,
    build_figure6,
    build_figure7,
    build_figure8,
    build_notification_funnel,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_figure6,
    render_figure7,
    render_figure8,
    render_notification_funnel,
)
from repro.clock import MEASUREMENTS_PAUSED


class TestFigure2:
    def test_groups_and_partition(self, session_sim):
        rows = build_figure2(session_sim)
        assert [r.group for r in rows][0] == "All domains"
        for row in rows:
            assert row.patched + row.vulnerable + row.unknown == row.total

    def test_all_row_covers_initially_vulnerable(self, session_sim, session_result):
        rows = build_figure2(session_sim)
        assert rows[0].total == len(session_result.initial.vulnerable_domains())

    def test_majority_remains_vulnerable(self, session_sim):
        rows = build_figure2(session_sim)
        all_row = rows[0]
        assert all_row.vulnerable > all_row.patched  # the paper's 80% story

    def test_render(self, session_sim):
        assert "Figure 2" in render_figure2(build_figure2(session_sim))


class TestFigure3:
    def test_cell_totals_match_vulnerable_ips(self, session_sim, session_result):
        figure = build_figure3(session_sim)
        total = sum(cell.vulnerable for cell in figure.cells.values())
        assert total == len(session_result.initial.vulnerable_ips())

    def test_country_patch_rates_bounded(self, session_sim):
        figure = build_figure3(session_sim)
        for cell in figure.countries.values():
            assert 0.0 <= cell.patch_rate <= 1.0
            assert cell.patched <= cell.vulnerable

    def test_render(self, session_sim):
        assert "Figure 3" in render_figure3(build_figure3(session_sim))


class TestFigure4:
    def test_twenty_buckets(self, session_sim):
        figure = build_figure4(session_sim)
        assert len(figure.alexa) == 20
        assert len(figure.two_week) == 20

    def test_bucket_domains_sum_to_set_size(self, session_sim):
        from repro.internet.population import DomainSet

        figure = build_figure4(session_sim)
        assert sum(b.domains for b in figure.alexa) == session_sim.population.set_size(
            DomainSet.ALEXA_TOP_LIST
        )

    def test_patched_subset_of_vulnerable(self, session_sim):
        figure = build_figure4(session_sim)
        for bucket in figure.alexa + figure.two_week:
            assert bucket.patched <= bucket.vulnerable <= bucket.domains

    def test_render(self, session_sim):
        assert "rank" in render_figure4(build_figure4(session_sim))


class TestFigure5:
    def test_one_point_per_round(self, session_sim, session_result):
        figure = build_figure5(session_sim)
        assert len(figure.series) == len(session_result.rounds)

    def test_counts_partition(self, session_sim):
        figure = build_figure5(session_sim)
        for point in figure.series:
            assert point.measured + point.inferred + point.inconclusive == point.total

    def test_inconclusive_grows_over_time(self, session_sim):
        """Blacklisting/moves make late rounds less conclusive (Figure 5's
        widening gap)."""
        figure = build_figure5(session_sim)
        first, last = figure.series[0], figure.series[-1]
        assert last.inconclusive >= first.inconclusive

    def test_render(self, session_sim):
        assert "Conclusive" in render_figure5(build_figure5(session_sim))


class TestFigures6And7:
    def test_figure6_restricted_to_window1(self, session_sim):
        figure = build_figure6(session_sim)
        for series in figure.series:
            assert all(p.date <= MEASUREMENTS_PAUSED for p in series.points)

    def test_figure7_covers_both_windows(self, session_sim):
        figure = build_figure7(session_sim)
        dates = [p.date for p in figure.series[0].points]
        assert dates[0] <= MEASUREMENTS_PAUSED < dates[-1]

    def test_vulnerability_rates_monotone_nonincreasing(self, session_sim):
        """No regressions: the vulnerable fraction can only fall."""
        figure = build_figure7(session_sim)
        for series in figure.series:
            rates = [
                p.vulnerable / (p.vulnerable + p.patched)
                for p in series.points
                if p.vulnerable + p.patched
            ]
            assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:]))

    def test_final_fraction_near_80_percent(self, session_sim):
        figure = build_figure7(session_sim)
        assert 0.6 < figure.final_vulnerable_fraction() <= 1.0

    def test_renders(self, session_sim):
        assert "Figure 6" in render_figure6(build_figure6(session_sim))
        assert "Figure 7" in render_figure7(build_figure7(session_sim))


class TestFigure8:
    def test_restricted_to_alexa_1000(self, session_sim, session_result):
        from repro.internet.population import DomainSet

        figure = build_figure8(session_sim)
        top_names = {
            d.name
            for d in session_sim.population.in_set(DomainSet.ALEXA_1000)
        }
        vulnerable_top = [
            n for n in session_result.initial.vulnerable_domains() if n in top_names
        ]
        assert figure.initially_vulnerable == len(vulnerable_top)

    def test_snapshot_partition(self, session_sim):
        figure = build_figure8(session_sim)
        assert (
            figure.snapshot_patched
            + figure.snapshot_vulnerable
            + figure.snapshot_unknown
            == figure.initially_vulnerable
        )

    def test_render(self, session_sim):
        assert "Top 1000" in render_figure8(build_figure8(session_sim))


class TestNotificationFunnel:
    def test_funnel_consistency(self, session_sim):
        funnel = build_notification_funnel(session_sim)
        assert funnel is not None
        assert funnel.delivered + funnel.bounced == funnel.sent
        assert funnel.opened <= funnel.delivered
        assert funnel.openers_patched_before_disclosure <= funnel.openers_patched_eventually

    def test_private_notification_weakly_effective(self, session_sim):
        """The paper's core finding: patching between private and public
        disclosure among openers is rare."""
        funnel = build_notification_funnel(session_sim)
        if funnel.opened:
            assert funnel.openers_patched_before_disclosure / funnel.opened < 0.3

    def test_render(self, session_sim):
        assert "funnel" in render_notification_funnel(
            build_notification_funnel(session_sim)
        )
