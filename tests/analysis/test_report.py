"""Tests for the paper-target scorecard, report, and CSV export."""

import csv
import io

import pytest

from repro.analysis.export import EXPORTERS, export_all
from repro.analysis.paper_targets import PAPER_TARGETS, evaluate_targets
from repro.analysis.report import generate_report, targets_all_within_band


class TestPaperTargets:
    def test_every_target_measurable(self, session_sim):
        results = evaluate_targets(session_sim)
        assert len(results) == len(PAPER_TARGETS)
        for item in results:
            assert item.measured is not None, item.target.key

    def test_paper_values_inside_their_own_bands(self):
        for target in PAPER_TARGETS:
            low, high = target.band
            assert low <= target.paper_value <= high, target.key

    def test_all_targets_within_band_on_reference_run(self, session_sim):
        """The acceptance check: the reference seed reproduces every
        encoded claim within tolerance."""
        failing = [
            (r.target.key, r.measured)
            for r in evaluate_targets(session_sim)
            if not r.within_band
        ]
        assert failing == []

    def test_keys_unique(self):
        keys = [t.key for t in PAPER_TARGETS]
        assert len(keys) == len(set(keys))


class TestReport:
    def test_report_contains_scorecard_and_artifacts(self, session_sim):
        report = generate_report(session_sim)
        assert "Paper-target scorecard" in report
        assert "Table 4" in report
        assert "Figure 7" in report
        assert "Run provenance" in report
        # One scorecard row per target.
        assert report.count("| ") >= len(PAPER_TARGETS)

    def test_targets_all_within_band_helper(self, session_sim):
        assert targets_all_within_band(session_sim)

    def test_observability_section_carries_trace_analysis(self):
        from repro.api import RunConfig
        from repro.obs import Observation
        from repro.simulation import Simulation

        observation = Observation(trace=True)
        sim = Simulation.build(
            config=RunConfig(scale=0.002, seed=5), observation=observation
        )
        sim.run()
        report = generate_report(sim)
        assert "## Observability" in report
        assert "### Histogram percentiles" in report
        assert "### Trace analysis" in report
        # the analyzer's stage table and critical path made it in
        assert "| initial |" in report
        assert "Critical path (virtual time):" in report

    def test_observability_section_without_observation(self, session_sim):
        report = generate_report(session_sim)
        assert "Observability disabled for this run" in report


class TestCsvExport:
    def test_every_exporter_produces_parsable_csv(self, session_sim):
        for name, exporter in EXPORTERS.items():
            text = exporter(session_sim)
            rows = list(csv.reader(io.StringIO(text)))
            assert len(rows) >= 1, name
            header = rows[0]
            for row in rows[1:]:
                assert len(row) == len(header), name

    def test_figure5_csv_has_one_row_per_round(self, session_sim, session_result):
        from repro.analysis.export import figure5_csv

        rows = list(csv.reader(io.StringIO(figure5_csv(session_sim))))
        assert len(rows) - 1 == len(session_result.rounds)

    def test_export_all_writes_files(self, session_sim, tmp_path):
        written = export_all(session_sim, tmp_path / "csv")
        assert set(written) == set(EXPORTERS)
        for path in written.values():
            assert path.exists()
            assert path.read_text().strip()
