"""Tests for the Table 1-7 builders, against the session campaign."""

import pytest

from repro.analysis import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    build_table6,
    build_table7,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    render_table6,
    render_table7,
)
from repro.core.fingerprint import ExpansionBehavior
from repro.internet.population import DomainSet


class TestTable1:
    def test_diagonal_is_set_size(self, session_sim):
        rows = build_table1(session_sim.population)
        for row in rows:
            assert row.cells[row.row_set] == row.row_size

    def test_alexa1000_fully_inside_top_list(self, session_sim):
        rows = {r.row_set: r for r in build_table1(session_sim.population)}
        assert rows["Alexa 1000"].cells["Alexa Top List"] == rows["Alexa 1000"].row_size

    def test_render(self, session_sim):
        text = render_table1(build_table1(session_sim.population))
        assert "Table 1" in text
        assert "2-Week MX" in text


class TestTable2:
    def test_com_tops_both_columns(self, session_sim):
        rows = build_table2(session_sim.population)
        assert rows[0].alexa_tld == "com"
        assert rows[0].two_week_tld == "com"

    def test_counts_descending(self, session_sim):
        rows = build_table2(session_sim.population)
        alexa_counts = [r.alexa_count for r in rows if r.alexa_tld]
        assert alexa_counts == sorted(alexa_counts, reverse=True)

    def test_row_count(self, session_sim):
        assert len(build_table2(session_sim.population, top=15)) == 15

    def test_render(self, session_sim):
        assert "Table 2" in render_table2(build_table2(session_sim.population))


class TestTable3:
    @pytest.fixture()
    def columns(self, session_sim, session_result):
        return build_table3(session_sim.population, session_result.initial)

    def test_three_groups(self, columns):
        assert [c.group for c in columns] == [
            "Alexa Top List", "2-Week MX", "Top Email Providers",
        ]

    def test_ip_buckets_partition(self, columns):
        for column in columns:
            b = column.addresses
            assert b.refused + b.nomsg_tested == b.total
            assert (
                b.nomsg_failure + b.nomsg_measured + b.nomsg_not_measured
                == b.nomsg_tested
            )
            assert b.blankmsg_tested == b.nomsg_not_measured
            assert (
                b.blankmsg_failure + b.blankmsg_measured + b.blankmsg_not_measured
                == b.blankmsg_tested
            )
            assert b.total_measured == b.nomsg_measured + b.blankmsg_measured

    def test_domain_measured_share_exceeds_ip_share(self, columns):
        alexa = columns[0]
        ip_share = alexa.addresses.total_measured / alexa.addresses.total
        domain_share = alexa.domains.total_measured / alexa.domains.total
        assert domain_share > ip_share  # the paper's hosting-size effect

    def test_providers_never_refused(self, columns):
        providers = columns[2]
        assert providers.addresses.refused == 0
        assert providers.domains.total == 20

    def test_render(self, columns):
        text = render_table3(columns)
        assert "NoMsg" in text and "BlankMsg" in text


class TestTable4:
    @pytest.fixture()
    def rows(self, session_sim, session_result):
        return build_table4(session_sim.population, session_result.initial)

    def test_groups(self, rows):
        assert [r.group for r in rows] == ["Alexa Top List", "2-Week MX", "Combined"]

    def test_ip_counts_partition(self, rows):
        for row in rows:
            assert (
                row.ips_vulnerable + row.ips_erroneous + row.ips_compliant
                == row.ips_measured
            )

    def test_vulnerable_share_near_paper(self, rows):
        combined = rows[-1]
        share = combined.ips_vulnerable / combined.ips_measured
        assert 0.08 < share < 0.30  # paper: ~1 in 6

    def test_domain_vulnerable_share_below_ip_share(self, rows):
        alexa = rows[0]
        ip_share = alexa.ips_vulnerable / alexa.ips_measured
        domain_share = alexa.domains_vulnerable / alexa.domains_measured
        assert domain_share < ip_share  # paper: 8.7% vs 17%

    def test_render(self, rows):
        assert "Erroneous" in render_table4(rows)


class TestTable5:
    def test_structure(self, session_sim):
        table = build_table5(session_sim)
        assert len(table.best) <= 5 and len(table.worst) <= 5
        for row in table.best + table.worst:
            assert row.initially_vulnerable >= table.threshold
            assert 0 <= row.patched <= row.initially_vulnerable

    def test_best_outranks_worst(self, session_sim):
        table = build_table5(session_sim)
        if table.best and table.worst:
            assert table.best[0].patch_rate >= table.worst[-1].patch_rate

    def test_render(self, session_sim):
        assert "Patched" in render_table5(build_table5(session_sim))


class TestTable6:
    def test_rows_match_paper(self):
        rows = {r.manager: r for r in build_table6()}
        assert rows["Debian"].days_20314 == 0
        assert rows["Debian"].days_33912 == 1
        assert rows["RedHat"].folded
        assert rows["Ubuntu"].days_33912 is None

    def test_sorted_by_first_cve_response(self):
        rows = build_table6()
        patched = [r for r in rows if r.days_20314 is not None]
        assert [r.days_20314 for r in patched] == sorted(r.days_20314 for r in patched)
        assert all(r.days_20314 is not None for r in rows[: len(patched)])

    def test_render_has_footnote(self):
        text = render_table6(build_table6())
        assert "Unpatched" in text
        assert "*Patches included" in text


class TestTable7:
    @pytest.fixture()
    def table(self, session_result):
        return build_table7(session_result.initial)

    def test_total_matches_measured(self, session_result, table):
        measured = sum(
            1
            for r in session_result.initial.ip_records.values()
            if r.outcome.spf_measured
        )
        assert table.total_measured == measured

    def test_compliant_dominates(self, table):
        counts = table.behavior_counts
        assert counts[ExpansionBehavior.RFC_COMPLIANT] == max(counts.values())

    def test_vulnerable_present(self, table):
        assert table.behavior_counts[ExpansionBehavior.VULNERABLE_LIBSPF2] > 0

    def test_multiple_patterns_counted(self, session_result, table):
        expected = sum(
            1
            for r in session_result.initial.ip_records.values()
            if r.outcome.spf_measured and len(r.behaviors) > 1
        )
        assert table.multiple_patterns == expected

    def test_render(self, table):
        assert "libSPF2" in render_table7(table)
