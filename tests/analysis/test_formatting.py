"""Tests for the analysis text renderer and status helpers."""

import pytest

from repro.analysis.formatting import count_pct, pct, render_table
from repro.analysis.status import final_domain_status, final_ip_status
from repro.core.campaign import DomainStatus


class TestRenderTable:
    def test_alignment(self):
        text = render_table(
            ["Name", "Count"],
            [["short", 1], ["a-much-longer-name", 22]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("Name")
        # All data rows align the second column at the same offset.
        offset = lines[2].index("1")
        assert lines[3][offset - 1] == "2" or lines[3][offset] == "2"

    def test_title_underlined(self):
        text = render_table(["A"], [["x"]], title="My Title")
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_handles_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert "A" in text and "B" in text

    def test_non_string_cells_coerced(self):
        text = render_table(["A"], [[3.5], [None]])
        assert "3.5" in text and "None" in text


class TestPercentages:
    def test_pct(self):
        assert pct(1, 4) == "25%"
        assert pct(0, 4) == "0%"
        assert pct(4, 4) == "100%"

    def test_pct_small_values_one_decimal(self):
        assert pct(1, 1000) == "0.1%"

    def test_pct_zero_denominator(self):
        assert pct(1, 0) == "-"

    def test_count_pct(self):
        assert count_pct(1234, 2468) == "1,234 (50%)"


class TestSparkline:
    def test_empty(self):
        from repro.analysis.formatting import sparkline

        assert sparkline([]) == ""

    def test_length_matches_series(self):
        from repro.analysis.formatting import sparkline

        assert len(sparkline([0.1, 0.5, 0.9, 0.2])) == 4

    def test_monotone_series_monotone_glyphs(self):
        from repro.analysis.formatting import _SPARK_LEVELS, sparkline

        glyphs = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        indices = [_SPARK_LEVELS.index(g) for g in glyphs]
        assert indices == sorted(indices)

    def test_constant_series(self):
        from repro.analysis.formatting import sparkline

        assert len(set(sparkline([3.0, 3.0, 3.0]))) == 1

    def test_explicit_bounds(self):
        from repro.analysis.formatting import _SPARK_LEVELS, sparkline

        spark = sparkline([0.0, 1.0], low=0.0, high=2.0)
        assert spark[0] == _SPARK_LEVELS[0]
        assert _SPARK_LEVELS.index(spark[1]) < len(_SPARK_LEVELS) - 1


class TestStatusHelpers:
    def test_final_domain_status_covers_all_vulnerable(self, session_sim, session_result):
        status = final_domain_status(session_sim)
        assert set(status) == set(session_result.initial.vulnerable_domains())
        assert set(status.values()) <= {
            DomainStatus.PATCHED, DomainStatus.VULNERABLE, DomainStatus.UNKNOWN,
        }

    def test_final_ip_status_covers_all_vulnerable_ips(self, session_sim, session_result):
        status = final_ip_status(session_sim)
        assert set(status) == set(session_result.initial.vulnerable_ips())

    def test_patched_ips_match_ground_truth(self, session_sim, session_result):
        model = session_sim.patch_model
        fleet = session_sim.fleet
        for ip, patched in final_ip_status(session_sim).items():
            if patched is True:
                assert model.plan_for(fleet.unit_by_ip[ip]).patches
            elif patched is False:
                plan = model.plan_for(fleet.unit_by_ip[ip])
                assert not plan.patched_by(session_result.rounds[-1].date)
