"""Smoke tests: every example script runs and prints its key output."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "vulnerable" in proc.stdout
        assert "compliant" in proc.stdout
        assert "org.org.dns-lab" in proc.stdout

    def test_vulnerability_poc(self):
        proc = run_example("vulnerability_poc.py")
        assert proc.returncode == 0, proc.stderr
        assert "CVE-2021-33912" in proc.stdout
        assert "CVE-2021-33913" in proc.stdout
        assert "com.com.example" in proc.stdout
        assert "memory safe" in proc.stdout

    def test_spf_engine_demo(self):
        proc = run_example("spf_engine_demo.py")
        assert proc.returncode == 0, proc.stderr
        assert "pass" in proc.stdout and "fail" in proc.stdout

    def test_measurement_campaign_small(self):
        proc = run_example("measurement_campaign.py", "0.002")
        assert proc.returncode == 0, proc.stderr
        assert "Table 4" in proc.stdout
        assert "Figure 7" in proc.stdout

    def test_operator_scan(self):
        proc = run_example("operator_scan.py")
        assert proc.returncode == 0, proc.stderr
        assert "ACTION REQUIRED: shop.example" in proc.stdout
        assert "vulnerable domains: 1 of 3" in proc.stdout

    def test_notification_study_runs(self):
        proc = run_example("notification_study.py", timeout=600)
        assert proc.returncode == 0, proc.stderr
        assert "Package Manager" in proc.stdout
        assert "never patched" in proc.stdout
