"""Tests for the pluggable macro-expansion behaviors."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.spf.implementations import (
    NoExpansionBehavior,
    PatchedLibSpf2Behavior,
    ReversedNotTruncatedBehavior,
    RfcCompliantBehavior,
    StaticExpansionBehavior,
    TruncatedNotReversedBehavior,
    VulnerableLibSpf2Behavior,
    all_behaviors,
    behavior_by_name,
)
from repro.spf.macro import MacroContext, expand_macros


def ctx_for(domain="example.com", sender=None):
    return MacroContext(
        sender=sender or f"user@{domain}",
        domain=domain,
        client_ip=ipaddress.IPv4Address("192.0.2.3"),
    )


SPEC = "%{d1r}.probe.example"


class TestBehaviorTable:
    """The module docstring's behavior table, asserted."""

    @pytest.mark.parametrize(
        "name,expected",
        [
            ("rfc-compliant", "example.probe.example"),
            ("patched-libspf2", "example.probe.example"),
            ("vulnerable-libspf2", "com.com.example.probe.example"),
            ("no-expansion", "%{d1r}.probe.example"),
            ("reversed-not-truncated", "com.example.probe.example"),
            ("truncated-not-reversed", "com.probe.example"),
            ("static-expansion", "unknown.probe.example"),
        ],
    )
    def test_d1r_expansion(self, name, expected):
        behavior = behavior_by_name(name)
        assert behavior.expand_domain_spec(SPEC, ctx_for()).output == expected

    def test_all_behaviors_distinct_on_fingerprint(self):
        outputs = {
            b.name: b.expand_domain_spec(SPEC, ctx_for()).output
            for b in all_behaviors()
        }
        # The fingerprint macro separates every behavior except the two
        # compliant implementations (identical by design).
        assert outputs["rfc-compliant"] == outputs["patched-libspf2"]
        non_compliant = {k: v for k, v in outputs.items() if k != "patched-libspf2"}
        assert len(set(non_compliant.values())) == len(non_compliant)


class TestRegistry:
    def test_lookup(self):
        assert isinstance(behavior_by_name("rfc-compliant"), RfcCompliantBehavior)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            behavior_by_name("nonexistent")

    def test_flags(self):
        assert behavior_by_name("vulnerable-libspf2").vulnerable
        assert not behavior_by_name("vulnerable-libspf2").rfc_compliant
        assert behavior_by_name("rfc-compliant").rfc_compliant
        assert behavior_by_name("patched-libspf2").rfc_compliant
        assert not behavior_by_name("no-expansion").rfc_compliant


class TestVulnerableBehavior:
    def test_no_crash_on_plain_reversal(self):
        outcome = VulnerableLibSpf2Behavior().expand(SPEC, ctx_for())
        assert not outcome.crashed
        assert not outcome.corrupted

    def test_crash_on_reversal_plus_url_encoding(self):
        outcome = VulnerableLibSpf2Behavior().expand(
            "%{D2R}.x.example", ctx_for("a.b.c.d.example.com")
        )
        assert outcome.crashed or outcome.corrupted

    def test_patched_survives_same_input(self):
        outcome = PatchedLibSpf2Behavior().expand(
            "%{D2R}.x.example", ctx_for("a.b.c.d.example.com")
        )
        assert not outcome.crashed
        assert not outcome.corrupted


class TestVariants:
    def test_reversed_not_truncated_honors_reverse_only(self):
        behavior = ReversedNotTruncatedBehavior()
        out = behavior.expand("%{d1r}", ctx_for("a.b.c")).output
        assert out == "c.b.a"

    def test_truncated_not_reversed_honors_digits_only(self):
        behavior = TruncatedNotReversedBehavior()
        out = behavior.expand("%{d2r}", ctx_for("a.b.c")).output
        assert out == "b.c"

    def test_no_expansion_is_verbatim(self):
        behavior = NoExpansionBehavior()
        assert behavior.expand("%{l}.%{d}", ctx_for()).output == "%{l}.%{d}"

    def test_static_placeholder_configurable(self):
        behavior = StaticExpansionBehavior(placeholder="spf")
        assert behavior.expand("%{d}.tail", ctx_for()).output == "spf.tail"

    def test_variants_match_rfc_on_macro_free_specs(self):
        spec = "plain.example.com"
        for behavior in all_behaviors():
            assert behavior.expand_domain_spec(spec, ctx_for()).output == spec


domain_st = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6), min_size=1, max_size=5
).map(".".join)
macro_expr_st = st.builds(
    lambda letter, digits, reverse: "%{" + letter + digits + ("r" if reverse else "") + "}",
    st.sampled_from(["l", "d", "o", "s"]),
    st.sampled_from(["", "1", "2", "3"]),
    st.booleans(),
)


class TestPatchedEquivalence:
    """The patched libSPF2 port must agree with the reference RFC engine
    on arbitrary macro-strings — the property that makes the patched
    build 'fixed'."""

    @given(domain_st, macro_expr_st)
    def test_patched_equals_rfc(self, domain, macro):
        ctx = ctx_for(domain)
        patched = PatchedLibSpf2Behavior().expand(macro, ctx)
        assert patched.output == expand_macros(macro, ctx)
        assert not patched.crashed

    @given(domain_st)
    def test_vulnerable_fingerprint_shape(self, domain):
        """The vulnerable %{d1r} output is always: last label duplicated,
        then all labels reversed, never truncated."""
        ctx = ctx_for(domain)
        out = VulnerableLibSpf2Behavior().expand("%{d1r}", ctx).output
        labels = domain.split(".")
        expected = ".".join([labels[-1]] + list(reversed(labels)))
        assert out == expected
