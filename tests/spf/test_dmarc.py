"""Tests for the DMARC subset (paper Section 6.2's delivery safeguard)."""

import pytest

from repro.clock import SimulatedClock
from repro.dns import (
    AuthoritativeServer,
    CachingResolver,
    Name,
    SpfTestResponder,
    StubResolver,
    TXT,
    Zone,
)
from repro.errors import SpfSyntaxError
from repro.spf.dmarc import (
    AlignmentMode,
    Disposition,
    DmarcPolicy,
    evaluate_dmarc,
    looks_like_dmarc,
    lookup_dmarc,
    organizational_domain,
    parse_dmarc,
    spf_aligned,
)
from repro.spf.result import SpfResult


class TestParse:
    def test_minimal_record(self):
        record = parse_dmarc("v=DMARC1; p=none")
        assert record.policy == DmarcPolicy.NONE
        assert record.percentage == 100

    def test_full_record(self):
        record = parse_dmarc("v=DMARC1; p=reject; sp=quarantine; aspf=s; pct=50")
        assert record.policy == DmarcPolicy.REJECT
        assert record.subdomain_policy == DmarcPolicy.QUARANTINE
        assert record.spf_alignment == AlignmentMode.STRICT
        assert record.percentage == 50

    def test_effective_policy_for_subdomain(self):
        record = parse_dmarc("v=DMARC1; p=none; sp=reject")
        assert record.effective_policy(is_subdomain=True) == DmarcPolicy.REJECT
        assert record.effective_policy(is_subdomain=False) == DmarcPolicy.NONE

    def test_missing_p_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_dmarc("v=DMARC1; sp=reject")

    def test_bad_policy_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_dmarc("v=DMARC1; p=bounce")

    def test_bad_pct_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_dmarc("v=DMARC1; p=none; pct=150")

    def test_not_dmarc_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_dmarc("v=spf1 -all")

    def test_looks_like_dmarc(self):
        assert looks_like_dmarc("v=DMARC1; p=reject")
        assert looks_like_dmarc("V=dmarc1")
        assert not looks_like_dmarc("v=DMARC12; p=reject")


class TestAlignment:
    def test_organizational_domain(self):
        assert organizational_domain("a.b.example.com") == "example.com"
        assert organizational_domain("example.com") == "example.com"
        assert organizational_domain("com") == "com"

    def test_relaxed_alignment(self):
        assert spf_aligned("mail.example.com", "example.com", AlignmentMode.RELAXED)
        assert not spf_aligned("mail.example.com", "other.org", AlignmentMode.RELAXED)

    def test_strict_alignment(self):
        assert spf_aligned("example.com", "EXAMPLE.COM", AlignmentMode.STRICT)
        assert not spf_aligned("mail.example.com", "example.com", AlignmentMode.STRICT)


@pytest.fixture()
def resolver():
    zone = Zone("example.com")
    zone.add("_dmarc", TXT("v=DMARC1; p=reject; sp=quarantine"))
    bare = Zone("nopolicy.org")
    server = AuthoritativeServer([zone, bare])
    caching = CachingResolver()
    caching.register("example.com", server)
    caching.register("nopolicy.org", server)
    return StubResolver(caching)


class TestLookup:
    def test_direct_lookup(self, resolver):
        record, is_subdomain = lookup_dmarc(resolver, "example.com")
        assert record.policy == DmarcPolicy.REJECT
        assert not is_subdomain

    def test_organizational_fallback(self, resolver):
        record, is_subdomain = lookup_dmarc(resolver, "deep.sub.example.com")
        assert record.policy == DmarcPolicy.REJECT
        assert is_subdomain

    def test_no_policy(self, resolver):
        assert lookup_dmarc(resolver, "nopolicy.org") is None


class TestEvaluate:
    def test_aligned_pass_accepts(self, resolver):
        disposition = evaluate_dmarc(
            resolver,
            header_from_domain="example.com",
            spf_result=SpfResult.PASS,
            spf_domain="example.com",
        )
        assert disposition == Disposition.ACCEPT

    def test_fail_hits_reject_policy(self, resolver):
        disposition = evaluate_dmarc(
            resolver,
            header_from_domain="example.com",
            spf_result=SpfResult.FAIL,
            spf_domain="example.com",
        )
        assert disposition == Disposition.REJECT

    def test_subdomain_policy_applies(self, resolver):
        disposition = evaluate_dmarc(
            resolver,
            header_from_domain="sub.example.com",
            spf_result=SpfResult.FAIL,
            spf_domain="sub.example.com",
        )
        assert disposition == Disposition.QUARANTINE

    def test_unaligned_pass_is_not_a_dmarc_pass(self, resolver):
        disposition = evaluate_dmarc(
            resolver,
            header_from_domain="example.com",
            spf_result=SpfResult.PASS,
            spf_domain="unrelated.org",
        )
        assert disposition == Disposition.REJECT

    def test_no_policy_disposition(self, resolver):
        disposition = evaluate_dmarc(
            resolver,
            header_from_domain="nopolicy.org",
            spf_result=SpfResult.FAIL,
            spf_domain="nopolicy.org",
        )
        assert disposition == Disposition.NO_POLICY


class TestMeasurementIntegration:
    """The paper's safeguard: probe source domains publish p=reject, so
    even servers that ignore SPF results refuse probe email under DMARC."""

    def test_responder_serves_dmarc_reject(self):
        clock = SimulatedClock()
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        caching = CachingResolver(clock=lambda: clock.now)
        caching.register("spf-test.dns-lab.org", responder)
        stub = StubResolver(caching, clock=lambda: clock.now)
        txts = stub.get_txt("_dmarc.ab1.s1.spf-test.dns-lab.org")
        assert any(looks_like_dmarc(t) for t in txts)
        record, _ = lookup_dmarc(stub, "ab1.s1.spf-test.dns-lab.org")
        assert record.policy == DmarcPolicy.REJECT

    def test_dmarc_enforcing_server_rejects_blank_probe(self):
        from repro.smtp import (
            Network,
            ServerPolicy,
            SmtpClient,
            SmtpServer,
            SpfStack,
            SpfTiming,
            TransactionKind,
            TransactionStatus,
        )

        clock = SimulatedClock()
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        caching = CachingResolver(clock=lambda: clock.now)
        caching.register("spf-test.dns-lab.org", responder)
        network = Network(clock=lambda: clock.now)
        # This server does not validate SPF at all; DMARC enforcement
        # alone keeps the blank probe out of its inbox.
        server = SmtpServer(
            "10.0.0.1",
            policy=ServerPolicy(enforce_dmarc=True),
            spf_stacks=[],
            resolver=StubResolver(caching, identity="10.0.0.1", clock=lambda: clock.now),
        )
        network.register(server)
        client = SmtpClient(network)
        result = client.probe(
            "10.0.0.1",
            sender="noreply@ab1.s1.spf-test.dns-lab.org",
            recipient="postmaster@target.example",
            kind=TransactionKind.BLANKMSG,
        )
        assert result.status == TransactionStatus.FAILED
        assert any("DMARC" in r.text for r in result.replies)
        assert not server.inbox
