"""Tests for check_host()."""

import ipaddress

import pytest

from repro.dns import (
    A,
    AAAA,
    AuthoritativeServer,
    CachingResolver,
    MX,
    Name,
    PTR,
    StubResolver,
    TXT,
    Zone,
)
from repro.spf import SpfEvaluator, SpfResult
from repro.spf.evaluator import MAX_DNS_MECHANISMS


def build(*zones):
    server = AuthoritativeServer(list(zones))
    resolver = CachingResolver()
    for zone in zones:
        resolver.register(zone.origin, server)
    return SpfEvaluator(StubResolver(resolver)), resolver


def check(evaluator, ip, domain="example.com", sender="user@example.com"):
    return evaluator.check_host(ipaddress.ip_address(ip), domain, sender)


class TestBasicMechanisms:
    def test_no_record_is_none(self):
        zone = Zone("example.com")
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.1").result == SpfResult.NONE

    def test_non_spf_txt_ignored(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("google-site-verification=xyz"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.1").result == SpfResult.NONE

    def test_ip4_match(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ip4:192.0.2.0/24 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.200").result == SpfResult.PASS
        assert check(evaluator, "198.51.100.1").result == SpfResult.FAIL

    def test_ip6_match(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ip6:2001:db8::/32 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "2001:db8::5").result == SpfResult.PASS
        assert check(evaluator, "2001:dead::5").result == SpfResult.FAIL

    def test_ip4_never_matches_ipv6_client(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ip4:0.0.0.0/0 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "2001:db8::1").result == SpfResult.FAIL

    def test_a_mechanism(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a -all"))
        zone.add("example.com", A("192.0.2.10"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.10").result == SpfResult.PASS

    def test_a_with_domain_spec(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a:relay.example.com -all"))
        zone.add("relay", A("192.0.2.11"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.11").result == SpfResult.PASS

    def test_a_with_prefix(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a:relay.example.com/24 -all"))
        zone.add("relay", A("192.0.2.1"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.250").result == SpfResult.PASS

    def test_a_matches_aaaa_for_ipv6_client(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a -all"))
        zone.add("example.com", AAAA("2001:db8::10"))
        evaluator, _ = build(zone)
        assert check(evaluator, "2001:db8::10").result == SpfResult.PASS

    def test_mx_mechanism(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 mx -all"))
        zone.add("example.com", MX(10, "mail.example.com"))
        zone.add("mail", A("192.0.2.30"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.30").result == SpfResult.PASS
        assert check(evaluator, "192.0.2.31").result == SpfResult.FAIL

    def test_exists_mechanism(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 exists:flag.example.com -all"))
        zone.add("flag", A("127.0.0.2"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PASS

    def test_exists_no_answer_no_match(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 exists:missing.example.com ~all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.SOFTFAIL

    def test_neutral_when_nothing_matches_and_no_all(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ip4:192.0.2.1"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.NEUTRAL

    def test_first_match_wins(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ?ip4:192.0.2.1 +ip4:192.0.2.1 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.1").result == SpfResult.NEUTRAL

    def test_ptr_mechanism(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ptr -all"))
        zone.add("host", A("192.0.2.40"))
        reverse = Zone("40.2.0.192.in-addr.arpa")
        reverse.add(
            Name.from_text("40.2.0.192.in-addr.arpa"), PTR("host.example.com")
        )
        evaluator, resolver = build(zone, reverse)
        assert check(evaluator, "192.0.2.40").result == SpfResult.PASS
        # No PTR for other addresses -> no match.
        assert check(evaluator, "192.0.2.41").result == SpfResult.FAIL


class TestIncludeAndRedirect:
    def test_include_pass(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 include:other.org -all"))
        other = Zone("other.org")
        other.add("other.org", TXT("v=spf1 ip4:203.0.113.9 -all"))
        evaluator, _ = build(zone, other)
        assert check(evaluator, "203.0.113.9").result == SpfResult.PASS

    def test_include_fail_does_not_match(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 include:other.org ~all"))
        other = Zone("other.org")
        other.add("other.org", TXT("v=spf1 -all"))
        evaluator, _ = build(zone, other)
        assert check(evaluator, "8.8.8.8").result == SpfResult.SOFTFAIL

    def test_include_missing_record_is_permerror(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 include:other.org -all"))
        other = Zone("other.org")
        evaluator, _ = build(zone, other)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR

    def test_redirect_followed(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 redirect=_spf.example.com"))
        zone.add("_spf", TXT("v=spf1 ip4:192.0.2.77 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.77").result == SpfResult.PASS
        assert check(evaluator, "8.8.8.8").result == SpfResult.FAIL

    def test_redirect_to_nothing_is_permerror(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 redirect=void.example.com"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR

    def test_redirect_ignored_when_all_present(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 -all redirect=_spf.example.com"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.FAIL

    def test_macro_in_include_target(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 include:%{d2}.inc.example.com -all"))
        zone.add("example.com.inc", TXT("v=spf1 ip4:192.0.2.88 -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "192.0.2.88").result == SpfResult.PASS


class TestErrors:
    def test_multiple_spf_records_permerror(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 -all"))
        zone.add("example.com", TXT("v=spf1 +all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR

    def test_syntax_error_permerror(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 bogus:mech -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR

    def test_unresolvable_dns_temperror(self):
        zone = Zone("example.com")
        evaluator, _ = build(zone)
        # Query a domain no backend serves.
        assert check(evaluator, "8.8.8.8", domain="other.org").result == SpfResult.TEMPERROR

    def test_lookup_limit_permerror(self):
        zone = Zone("example.com")
        mechanisms = " ".join(
            f"a:host{i}.example.com" for i in range(MAX_DNS_MECHANISMS + 2)
        )
        zone.add("example.com", TXT(f"v=spf1 {mechanisms} -all"))
        for i in range(MAX_DNS_MECHANISMS + 2):
            zone.add(f"host{i}", A(f"198.51.100.{i + 1}"))
        evaluator, _ = build(zone)
        outcome = check(evaluator, "203.0.113.200")
        assert outcome.result == SpfResult.PERMERROR
        assert outcome.dns_mechanism_count > MAX_DNS_MECHANISMS

    def test_include_self_recursion_limited(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 include:example.com -all"))
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR

    def test_void_lookup_limit(self):
        zone = Zone("example.com")
        zone.add(
            "example.com",
            TXT("v=spf1 a:v1.example.com a:v2.example.com a:v3.example.com -all"),
        )
        evaluator, _ = build(zone)
        assert check(evaluator, "8.8.8.8").result == SpfResult.PERMERROR


class TestOutcomeMetadata:
    def test_matched_mechanism_recorded(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 ip4:192.0.2.1 -all"))
        evaluator, _ = build(zone)
        outcome = check(evaluator, "192.0.2.1")
        assert outcome.matched_mechanism == "ip4:192.0.2.1"

    def test_dns_mechanism_count(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a mx -all"))
        zone.add("example.com", A("192.0.2.1"))
        zone.add("example.com", MX(10, "m.example.com"))
        zone.add("m", A("192.0.2.2"))
        evaluator, _ = build(zone)
        outcome = check(evaluator, "8.8.8.8")
        assert outcome.dns_mechanism_count == 2

    def test_str(self):
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 -all"))
        evaluator, _ = build(zone)
        assert "fail" in str(check(evaluator, "8.8.8.8"))
