"""Tests for SPF record parsing."""

import pytest

from repro.errors import SpfSyntaxError
from repro.spf.record import (
    Mechanism,
    Qualifier,
    SpfRecord,
    looks_like_spf,
    parse_record,
)
from repro.spf.result import SpfResult


class TestVersionTag:
    def test_looks_like_spf(self):
        assert looks_like_spf("v=spf1 -all")
        assert looks_like_spf("v=spf1")
        assert looks_like_spf("V=SPF1 a -all")

    def test_not_spf(self):
        assert not looks_like_spf("v=spf10 -all")
        assert not looks_like_spf("spf1 -all")
        assert not looks_like_spf("google-site-verification=abc")

    def test_parse_rejects_non_spf(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("not spf at all")

    def test_bare_version_is_empty_record(self):
        record = parse_record("v=spf1")
        assert record.mechanisms == []
        assert record.modifiers == []


class TestMechanisms:
    def test_all(self):
        record = parse_record("v=spf1 -all")
        assert record.mechanisms == [Mechanism("all", Qualifier.FAIL)]

    def test_all_takes_no_argument(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 all:example.com")

    @pytest.mark.parametrize(
        "qualifier,expected",
        [("+", Qualifier.PASS), ("-", Qualifier.FAIL),
         ("~", Qualifier.SOFTFAIL), ("?", Qualifier.NEUTRAL)],
    )
    def test_qualifiers(self, qualifier, expected):
        record = parse_record(f"v=spf1 {qualifier}all")
        assert record.mechanisms[0].qualifier == expected

    def test_default_qualifier_is_pass(self):
        assert parse_record("v=spf1 mx").mechanisms[0].qualifier == Qualifier.PASS

    def test_qualifier_results(self):
        assert Qualifier.FAIL.result == SpfResult.FAIL
        assert Qualifier.PASS.result == SpfResult.PASS
        assert Qualifier.SOFTFAIL.result == SpfResult.SOFTFAIL
        assert Qualifier.NEUTRAL.result == SpfResult.NEUTRAL

    def test_a_bare(self):
        mech = parse_record("v=spf1 a").mechanisms[0]
        assert (mech.name, mech.value) == ("a", None)

    def test_a_with_domain(self):
        mech = parse_record("v=spf1 a:mail.example.com").mechanisms[0]
        assert mech.value == "mail.example.com"

    def test_a_with_macro_domain(self):
        mech = parse_record("v=spf1 a:%{d1r}.foo.com").mechanisms[0]
        assert mech.value == "%{d1r}.foo.com"

    def test_a_with_cidr(self):
        mech = parse_record("v=spf1 a/24").mechanisms[0]
        assert mech.prefix_length == 24

    def test_a_with_domain_and_dual_cidr(self):
        mech = parse_record("v=spf1 a:example.com/24//64").mechanisms[0]
        assert (mech.value, mech.prefix_length, mech.prefix_length6) == (
            "example.com", 24, 64,
        )

    def test_mx(self):
        mech = parse_record("v=spf1 mx:other.org").mechanisms[0]
        assert (mech.name, mech.value) == ("mx", "other.org")

    def test_ip4(self):
        mech = parse_record("v=spf1 ip4:192.0.2.0/28").mechanisms[0]
        assert mech.value == "192.0.2.0/28"

    def test_ip4_single_address(self):
        assert parse_record("v=spf1 ip4:192.0.2.1").mechanisms[0].value == "192.0.2.1"

    def test_ip4_requires_address(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ip4")

    def test_ip4_bad_address(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 ip4:999.1.2.3")

    def test_ip6(self):
        mech = parse_record("v=spf1 ip6:2001:db8::/32").mechanisms[0]
        assert mech.value == "2001:db8::/32"

    def test_include_requires_domain(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 include")

    def test_include(self):
        mech = parse_record("v=spf1 include:bar.org").mechanisms[0]
        assert (mech.name, mech.value) == ("include", "bar.org")

    def test_exists(self):
        mech = parse_record("v=spf1 exists:%{ir}.rbl.example.org").mechanisms[0]
        assert mech.name == "exists"

    def test_ptr(self):
        assert parse_record("v=spf1 ptr").mechanisms[0].name == "ptr"

    def test_unknown_mechanism(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 bogus:thing")

    def test_order_preserved(self):
        record = parse_record("v=spf1 ip4:192.0.2.1 a mx -all")
        assert [m.name for m in record.mechanisms] == ["ip4", "a", "mx", "all"]


class TestModifiers:
    def test_redirect(self):
        record = parse_record("v=spf1 redirect=_spf.example.com")
        assert record.redirect == "_spf.example.com"
        assert record.mechanisms == []

    def test_exp(self):
        assert parse_record("v=spf1 -all exp=why.example.com").exp == "why.example.com"

    def test_unknown_modifier_tolerated(self):
        record = parse_record("v=spf1 -all custom=value")
        assert record.modifiers[-1].value == "value"

    def test_duplicate_redirect_rejected(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 redirect=a.com redirect=b.com")

    def test_redirect_requires_value(self):
        with pytest.raises(SpfSyntaxError):
            parse_record("v=spf1 redirect=")

    def test_no_redirect_is_none(self):
        assert parse_record("v=spf1 -all").redirect is None


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "v=spf1 a:foo.example.com ip4:192.0.2.1 include:bar.org -all",
            "v=spf1 mx ~all",
            "v=spf1 ?all",
            "v=spf1 a:%{d1r}.foo.com -all",
            "v=spf1 redirect=_spf.example.com",
        ],
    )
    def test_parse_render_parse(self, text):
        first = parse_record(text)
        second = parse_record(first.to_text())
        assert first.to_text() == second.to_text()

    def test_paper_policy_parses(self):
        policy = (
            "v=spf1 a:%{d1r}.ab1.s1.spf-test.dns-lab.org "
            "a:b.ab1.s1.spf-test.dns-lab.org -all"
        )
        record = parse_record(policy)
        assert len(record.mechanisms) == 3
        assert record.mechanisms[0].value == "%{d1r}.ab1.s1.spf-test.dns-lab.org"
