"""Tests for the RFC 7208 macro engine."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.errors import MacroError
from repro.spf.macro import (
    MacroContext,
    contains_macros,
    expand_macros,
    parse_macro_expr,
    split_on_delimiters,
    url_escape,
)


@pytest.fixture()
def ctx():
    return MacroContext(
        sender="user@example.com",
        domain="example.com",
        client_ip=ipaddress.IPv4Address("192.0.2.3"),
        helo_domain="mta.example.com",
    )


class TestPaperExamples:
    """The exact translations listed in the paper's Section 2.2."""

    @pytest.mark.parametrize(
        "macro,expected",
        [
            ("%{l}", "user"),
            ("%{d}", "example.com"),
            ("%{d2}", "example.com"),
            ("%{d1}", "com"),
            ("%{dr}", "com.example"),
            ("%{d1r}", "example"),
        ],
    )
    def test_translation(self, ctx, macro, expected):
        assert expand_macros(macro, ctx) == expected

    def test_mechanism_from_paper(self, ctx):
        assert expand_macros("%{d1r}.foo.com", ctx) == "example.foo.com"


class TestLetters:
    def test_sender(self, ctx):
        assert expand_macros("%{s}", ctx) == "user@example.com"

    def test_sender_without_local_part_gets_postmaster(self):
        ctx = MacroContext(
            sender="example.com",
            domain="example.com",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        assert expand_macros("%{s}", ctx) == "postmaster@example.com"
        assert expand_macros("%{l}", ctx) == "postmaster"

    def test_o_is_sender_domain(self, ctx):
        assert expand_macros("%{o}", ctx) == "example.com"

    def test_i_ipv4(self, ctx):
        assert expand_macros("%{i}", ctx) == "192.0.2.3"

    def test_i_ipv6_nibbles(self):
        ctx = MacroContext(
            sender="u@example.com",
            domain="example.com",
            client_ip=ipaddress.IPv6Address("2001:db8::1"),
        )
        expanded = expand_macros("%{i}", ctx)
        assert expanded.startswith("2.0.0.1.0.d.b.8")
        assert expanded.endswith(".0.0.0.1")
        assert len(expanded.split(".")) == 32

    def test_ir_reverses_address(self, ctx):
        assert expand_macros("%{ir}", ctx) == "3.2.0.192"

    def test_v_in_addr(self, ctx):
        assert expand_macros("%{v}", ctx) == "in-addr"

    def test_v_ip6(self):
        ctx = MacroContext(
            sender="u@x.org", domain="x.org",
            client_ip=ipaddress.IPv6Address("::1"),
        )
        assert expand_macros("%{v}", ctx) == "ip6"

    def test_h_helo(self, ctx):
        assert expand_macros("%{h}", ctx) == "mta.example.com"

    def test_p_defaults_unknown(self, ctx):
        assert expand_macros("%{p}", ctx) == "unknown"

    def test_exp_only_letters_rejected_in_domain_spec(self, ctx):
        for letter in "crt":
            with pytest.raises(MacroError):
                expand_macros("%{" + letter + "}", ctx)

    def test_exp_letters_allowed_in_exp(self, ctx):
        assert expand_macros("%{c}", ctx, in_exp=True) == "192.0.2.3"
        assert expand_macros("%{r}", ctx, in_exp=True) == "unknown"


class TestTransformers:
    def test_digits_keep_rightmost(self, ctx):
        ctx.domain = "a.b.c.d.e"
        assert expand_macros("%{d3}", ctx) == "c.d.e"

    def test_digits_larger_than_labels(self, ctx):
        assert expand_macros("%{d9}", ctx) == "example.com"

    def test_reverse_then_truncate_order(self, ctx):
        ctx.domain = "a.b.c"
        # reverse -> c.b.a, keep rightmost 2 -> b.a
        assert expand_macros("%{d2r}", ctx) == "b.a"

    def test_custom_delimiter(self):
        ctx = MacroContext(
            sender="one-two-three@example.com",
            domain="example.com",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        assert expand_macros("%{l1r-}", ctx) == "one"
        assert expand_macros("%{lr-}", ctx) == "three.two.one"

    def test_multiple_delimiters(self):
        ctx = MacroContext(
            sender="a-b+c@x.org", domain="x.org",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        assert expand_macros("%{lr-+}", ctx) == "c.b.a"


class TestEscapes:
    def test_percent_percent(self, ctx):
        assert expand_macros("100%%", ctx) == "100%"

    def test_underscore_space(self, ctx):
        assert expand_macros("a%_b", ctx) == "a b"

    def test_dash_url_space(self, ctx):
        assert expand_macros("a%-b", ctx) == "a%20b"

    def test_bare_percent_rejected(self, ctx):
        with pytest.raises(MacroError):
            expand_macros("100%", ctx)

    def test_unknown_escape_rejected(self, ctx):
        with pytest.raises(MacroError):
            expand_macros("%x", ctx)

    def test_unterminated_macro_rejected(self, ctx):
        with pytest.raises(MacroError):
            expand_macros("%{d1r", ctx)


class TestUrlEscape:
    def test_uppercase_letter_escapes(self):
        ctx = MacroContext(
            sender="a/b@x.org", domain="x.org",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        assert expand_macros("%{L}", ctx) == "a%2Fb"

    def test_unreserved_untouched(self):
        assert url_escape("Az09-._~") == "Az09-._~"

    def test_utf8_bytes_escaped_individually(self):
        assert url_escape("é") == "%C3%A9"

    def test_space(self):
        assert url_escape("a b") == "a%20b"


class TestParse:
    def test_basic(self):
        macro = parse_macro_expr("d1r")
        assert (macro.letter, macro.keep, macro.reverse) == ("d", 1, True)

    def test_defaults(self):
        macro = parse_macro_expr("s")
        assert macro.keep is None
        assert not macro.reverse
        assert macro.delimiters == "."

    def test_multi_digit(self):
        assert parse_macro_expr("d12").keep == 12

    def test_zero_digit_rejected(self):
        with pytest.raises(MacroError):
            parse_macro_expr("d0")

    def test_unknown_letter_rejected(self):
        with pytest.raises(MacroError):
            parse_macro_expr("q")

    def test_bad_delimiter_rejected(self):
        with pytest.raises(MacroError):
            parse_macro_expr("d1r!")

    def test_empty_rejected(self):
        with pytest.raises(MacroError):
            parse_macro_expr("")

    def test_uppercase_marks_url_escape(self):
        assert parse_macro_expr("D2").url_escape
        assert not parse_macro_expr("d2").url_escape


class TestHelpers:
    def test_split_on_delimiters(self):
        assert split_on_delimiters("a.b-c", ".-") == ["a", "b", "c"]

    def test_split_preserves_empties(self):
        assert split_on_delimiters("a..b", ".") == ["a", "", "b"]

    def test_contains_macros(self):
        assert contains_macros("x.%{d}.y")
        assert not contains_macros("plain.example.com")
        assert not contains_macros("100%%")


literal_st = st.text(
    alphabet=st.characters(
        min_codepoint=ord("a"), max_codepoint=ord("z")
    ),
    min_size=0,
    max_size=20,
)


class TestProperties:
    @given(literal_st)
    def test_literals_pass_through(self, text, ):
        ctx = MacroContext(
            sender="u@x.org", domain="x.org",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        assert expand_macros(text, ctx) == text

    @given(st.integers(min_value=1, max_value=8))
    def test_digit_transformer_bounds_labels(self, keep):
        ctx = MacroContext(
            sender="u@a.b.c.d.e.f", domain="a.b.c.d.e.f",
            client_ip=ipaddress.IPv4Address("192.0.2.3"),
        )
        expanded = expand_macros("%{d" + str(keep) + "}", ctx)
        assert len(expanded.split(".")) == min(keep, 6)
