"""Tests for the SpfResult enum semantics."""

import pytest

from repro.spf.result import SpfResult


class TestSpfResult:
    @pytest.mark.parametrize(
        "result",
        [SpfResult.PASS, SpfResult.FAIL, SpfResult.SOFTFAIL, SpfResult.NEUTRAL],
    )
    def test_definitive_results(self, result):
        assert result.is_definitive()

    @pytest.mark.parametrize(
        "result", [SpfResult.NONE, SpfResult.TEMPERROR, SpfResult.PERMERROR]
    )
    def test_non_definitive_results(self, result):
        assert not result.is_definitive()

    def test_str_is_lowercase_keyword(self):
        assert str(SpfResult.PASS) == "pass"
        assert str(SpfResult.PERMERROR) == "permerror"

    def test_values_cover_rfc_7208(self):
        assert {r.value for r in SpfResult} == {
            "none", "neutral", "pass", "fail", "softfail", "temperror", "permerror",
        }
