"""Tests for the TLD model."""

import pytest

from repro.internet.tld import (
    ALEXA_TLD_HEAD,
    ALEXA_TLD_WEIGHTS,
    PROACTIVE_PATCH_TLDS,
    TLD_PATCH_RATES,
    TWO_WEEK_TLD_HEAD,
    TWO_WEEK_TLD_WEIGHTS,
    TldModel,
)


class TestWeights:
    @pytest.mark.parametrize("weights", [ALEXA_TLD_WEIGHTS, TWO_WEEK_TLD_WEIGHTS])
    def test_normalized(self, weights):
        assert abs(sum(weights.values()) - 1.0) < 1e-9
        assert all(w >= 0 for w in weights.values())

    def test_paper_head_counts_preserved_as_ratios(self):
        # Table 2: com dominates both sets.
        assert ALEXA_TLD_WEIGHTS["com"] == max(ALEXA_TLD_WEIGHTS.values())
        assert TWO_WEEK_TLD_WEIGHTS["com"] == max(TWO_WEEK_TLD_WEIGHTS.values())
        # Relative ordering of head entries preserved.
        assert ALEXA_TLD_WEIGHTS["ru"] > ALEXA_TLD_WEIGHTS["ir"] > ALEXA_TLD_WEIGHTS["net"]
        assert TWO_WEEK_TLD_WEIGHTS["org"] > TWO_WEEK_TLD_WEIGHTS["edu"]

    def test_two_week_set_has_edu_gov_flavor(self):
        # The university-traffic set is edu/gov-heavy; Alexa is not.
        assert TWO_WEEK_TLD_WEIGHTS["edu"] > 0.05
        assert "edu" not in ALEXA_TLD_HEAD

    def test_head_ratio_matches_paper(self):
        assert abs(ALEXA_TLD_WEIGHTS["com"] - 230_801 / 418_842) < 0.01
        assert abs(TWO_WEEK_TLD_WEIGHTS["com"] - 11_182 / 22_911) < 0.01


class TestGeography:
    def test_cc_tld_country(self):
        assert TldModel.country_for("za") == "South Africa"
        assert TldModel.country_for("RU") == "Russia"

    def test_generic_tld_has_no_country(self):
        assert TldModel.country_for("com") is None
        assert TldModel.country_for("org") is None

    def test_is_country_code(self):
        assert TldModel.is_country_code("de")
        assert not TldModel.is_country_code("net")

    def test_coords_exist_for_all_mapped_countries(self):
        for tld in ("za", "ru", "tw", "de", "gr"):
            country = TldModel.country_for(tld)
            lat, lon = TldModel.coords_for_country(country)
            assert -90 <= lat <= 90 and -180 <= lon <= 180


class TestPatchRates:
    def test_paper_table5_values(self):
        assert TLD_PATCH_RATES["za"] == 0.79
        assert TLD_PATCH_RATES["gr"] == 0.75
        assert TLD_PATCH_RATES["tw"] == 0.00
        assert TLD_PATCH_RATES["ru"] == 0.02
        assert TLD_PATCH_RATES["com"] == 0.15

    def test_default_present(self):
        assert TLD_PATCH_RATES[None] > 0

    def test_za_is_proactive(self):
        assert PROACTIVE_PATCH_TLDS["za"] >= 0.9
