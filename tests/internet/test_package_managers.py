"""Tests for the package-manager timeline (paper Table 6)."""

import pytest

from repro.clock import PUBLIC_DISCLOSURE, utc
from repro.internet.package_managers import (
    CVE_2021_20314_DISCLOSURE,
    PACKAGE_MANAGER_TIMELINE,
    UNMANAGED_SHARE,
    deployment_shares,
    manager_by_name,
    managers_patched_by,
)


class TestTable6Data:
    """The timeline is recorded history: assert the paper's exact values."""

    @pytest.mark.parametrize(
        "name,days_20314",
        [
            ("Debian", 0),
            ("Alpine", 0),
            ("RedHat", 42),
            ("Gentoo", 75),
            ("Arch Linux", 103),
        ],
    )
    def test_days_to_patch_20314(self, name, days_20314):
        assert manager_by_name(name).days_to_patch_20314() == days_20314

    @pytest.mark.parametrize(
        "name",
        ["Ubuntu", "FreeBSD Ports", "NetBSD", "SUSE Hub"],
    )
    def test_never_patched(self, name):
        record = manager_by_name(name)
        assert record.days_to_patch_20314() is None
        assert record.days_to_patch_33912() is None

    def test_debian_patched_day_after_disclosure(self):
        assert manager_by_name("Debian").days_to_patch_33912() == 1

    def test_alpine_50_days(self):
        assert manager_by_name("Alpine").days_to_patch_33912() in (50, 51)

    @pytest.mark.parametrize("name", ["RedHat", "Gentoo", "Arch Linux"])
    def test_folded_fixes_count_as_zero_days(self, name):
        record = manager_by_name(name)
        assert record.folded_into_20314
        assert record.days_to_patch_33912() == 0
        # The fix shipped before the SPFail public disclosure.
        assert record.cve_33912_patch < PUBLIC_DISCLOSURE

    def test_disclosure_date_constant(self):
        assert CVE_2021_20314_DISCLOSURE == utc(2021, 8, 11)


class TestQueries:
    def test_managers_patched_by_disclosure(self):
        patched = {r.name for r in managers_patched_by(PUBLIC_DISCLOSURE)}
        assert patched == {"RedHat", "Gentoo", "Arch Linux"}

    def test_managers_patched_by_study_end(self):
        patched = {r.name for r in managers_patched_by(utc(2022, 2, 14))}
        assert patched == {"RedHat", "Gentoo", "Arch Linux", "Debian"}

    def test_unknown_manager(self):
        with pytest.raises(KeyError):
            manager_by_name("Slackware")

    def test_shares_form_distribution(self):
        shares = deployment_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert 0 <= UNMANAGED_SHARE <= 1
        assert shares["(unmanaged)"] == UNMANAGED_SHARE
