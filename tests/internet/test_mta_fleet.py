"""Tests for hosting-fleet generation."""

import collections

import pytest

from repro.clock import SimulatedClock, utc
from repro.dns import CachingResolver, Message, Name, RRType
from repro.internet.mta_fleet import (
    ALEXA_PROFILE,
    TWO_WEEK_PROFILE,
    UnitCategory,
    VULNERABLE_ELIGIBILITY_MAX_DOMAINS,
    _solve_class_probs,
    build_fleet,
)
from repro.internet.population import (
    DomainSet,
    PopulationConfig,
    VULNERABLE_PROVIDER_DOMAINS,
    generate_population,
)
from repro.smtp.policies import SpfTiming


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(scale=0.02, seed=11))


@pytest.fixture(scope="module")
def fleet(population):
    return build_fleet(population)


class TestCoverage:
    def test_every_domain_in_exactly_one_unit(self, population, fleet):
        counts = collections.Counter()
        for unit in fleet.units:
            for domain in unit.domains:
                counts[domain.name] += 1
        assert set(counts) == {d.name for d in population.domains}
        assert all(c == 1 for c in counts.values())

    def test_all_ips_unique(self, fleet):
        ips = [ip for unit in fleet.units for ip in unit.all_ips]
        assert len(ips) == len(set(ips))

    def test_lookup_structures_consistent(self, fleet):
        for unit in fleet.units[:100]:
            for domain in unit.domains:
                assert fleet.unit_by_domain[domain.name] is unit
            for ip in unit.all_ips:
                assert fleet.unit_by_ip[ip] is unit

    def test_every_unit_has_an_ip(self, fleet):
        assert all(unit.ips for unit in fleet.units)


class TestDnsBackend:
    def test_mx_resolution_path(self, fleet):
        unit = fleet.units[30]
        domain = unit.domains[0]
        backend = fleet.dns_backend
        mx = backend.query(
            Message.make_query(Name.from_text(domain.name), RRType.MX)
        )
        assert mx.answers
        exchange = mx.answers[0].rdata.exchange
        a = backend.query(Message.make_query(exchange, RRType.A))
        assert {rr.rdata.to_text() for rr in a.answers} == set(unit.ips)

    def test_unknown_domain_nxdomain(self, fleet):
        from repro.dns import Rcode

        response = fleet.dns_backend.query(
            Message.make_query(Name.from_text("not-generated.example"), RRType.MX)
        )
        assert response.rcode == Rcode.NXDOMAIN

    def test_nodata_for_other_types(self, fleet):
        unit = fleet.units[30]
        response = fleet.dns_backend.query(
            Message.make_query(Name.from_text(unit.domains[0].name), RRType.A)
        )
        # The domain has MX but (in this model) no apex A record.
        assert not response.answers


class TestCalibration:
    """The generated fleet must hit the paper's Table 3/4 shape."""

    def test_ip_level_refusal_rate(self, population, fleet):
        alexa = [
            u for u in fleet.units
            if u.domains[0].in_set(DomainSet.ALEXA_TOP_LIST)
            and not u.domains[0].in_set(DomainSet.TOP_EMAIL_PROVIDERS)
        ]
        refused = sum(1 for u in alexa if u.category == UnitCategory.REFUSE)
        assert abs(refused / len(alexa) - ALEXA_PROFILE.ip_targets[UnitCategory.REFUSE]) < 0.05

    def test_domain_level_refusal_rate_lower(self, fleet):
        alexa = [
            u for u in fleet.units
            if u.domains[0].in_set(DomainSet.ALEXA_TOP_LIST)
            and not u.domains[0].in_set(DomainSet.TOP_EMAIL_PROVIDERS)
        ]
        total_domains = sum(len(u.domains) for u in alexa)
        refused_domains = sum(
            len(u.domains) for u in alexa if u.category == UnitCategory.REFUSE
        )
        refused_units = sum(1 for u in alexa if u.category == UnitCategory.REFUSE)
        # Hosting-size structure: domain-level refusal well below IP-level.
        assert refused_domains / total_domains < refused_units / len(alexa)

    def test_vulnerable_rate_among_validating(self, fleet):
        validating = [u for u in fleet.units if u.category.validates_spf]
        vulnerable = [u for u in validating if u.is_vulnerable]
        assert 0.08 < len(vulnerable) / len(validating) < 0.30

    def test_vulnerable_domains_per_ip_near_paper(self, fleet):
        vulnerable = fleet.vulnerable_units()
        domains = sum(len(u.domains) for u in vulnerable)
        ips = sum(len(u.ips) for u in vulnerable)
        # Paper: 18,660 domains on 7,212 addresses ~ 2.6 domains/address.
        assert 1.0 < domains / ips < 5.0

    def test_mega_units_never_vulnerable(self, fleet):
        for unit in fleet.units:
            if len(unit.domains) > VULNERABLE_ELIGIBILITY_MAX_DOMAINS:
                assert not unit.is_vulnerable

    def test_spf_timing_consistent_with_category(self, fleet):
        for unit in fleet.units:
            if unit.category == UnitCategory.SPF_NOMSG:
                assert unit.spf_timing in (
                    SpfTiming.ON_MAIL_FROM, SpfTiming.ON_DATA_COMMAND,
                )
            elif unit.category == UnitCategory.SPF_BLANKMSG:
                assert unit.spf_timing == SpfTiming.AFTER_MESSAGE
            else:
                assert unit.behavior_name is None


class TestSolver:
    def test_exact_solution_recovers_targets(self):
        small, large = _solve_class_probs(
            ALEXA_PROFILE.ip_targets,
            ALEXA_PROFILE.domain_targets,
            unit_share_small=0.9,
            domain_share_small=0.45,
        )
        for category in UnitCategory:
            reconstructed_ip = 0.9 * small[category] + 0.1 * large[category]
            assert abs(reconstructed_ip - ALEXA_PROFILE.ip_targets[category]) < 0.05

    def test_probabilities_are_distributions(self):
        small, large = _solve_class_probs(
            TWO_WEEK_PROFILE.ip_targets,
            TWO_WEEK_PROFILE.domain_targets,
            unit_share_small=0.93,
            domain_share_small=0.55,
        )
        for probs in (small, large):
            assert abs(sum(probs.values()) - 1.0) < 1e-9
            assert all(p >= 0 for p in probs.values())


class TestProviders:
    def test_vulnerable_providers_configured(self, fleet):
        for name in VULNERABLE_PROVIDER_DOMAINS:
            unit = fleet.unit_by_domain[name]
            assert unit.is_vulnerable
            assert unit.category == UnitCategory.SPF_BLANKMSG

    def test_providers_never_refuse(self, fleet):
        providers = [
            u for u in fleet.units
            if u.domains[0].in_set(DomainSet.TOP_EMAIL_PROVIDERS)
        ]
        assert len(providers) == 20
        assert all(u.category != UnitCategory.REFUSE for u in providers)

    def test_providers_multi_homed(self, fleet):
        providers = [
            u for u in fleet.units
            if u.domains[0].in_set(DomainSet.TOP_EMAIL_PROVIDERS)
        ]
        assert all(len(u.ips) >= 2 for u in providers)


class TestNetworkMaterialization:
    def test_servers_match_unit_config(self, population, fleet):
        clock = SimulatedClock()
        resolver = CachingResolver(clock=lambda: clock.now)
        network = fleet.build_network(lambda: clock.now, resolver)
        assert len(network) == sum(len(u.all_ips) for u in fleet.units)
        vulnerable_unit = fleet.vulnerable_units()[0]
        server = network.server_at(vulnerable_unit.ips[0])
        assert server.is_vulnerable

    def test_moves_flip_addresses(self, population):
        fleet = build_fleet(population)
        movers = [u for u in fleet.units if u.moves_at is not None and u.new_ips]
        if not movers:
            pytest.skip("no movers generated at this scale/seed")
        clock = SimulatedClock()
        resolver = CachingResolver(clock=lambda: clock.now)
        network = fleet.build_network(lambda: clock.now, resolver)
        mover = movers[0]
        old_server = network.server_at(mover.ips[0])
        new_server = network.server_at(mover.new_ips[0])
        assert not old_server.policy.refuse_connections or mover.category == UnitCategory.REFUSE
        assert new_server.policy.refuse_connections  # not alive yet
        clock.advance_to(utc(2022, 2, 1))
        # The lazy network folds moves in on touch: re-fetching the
        # servers after advancing the clock observes the flip.
        old_server = network.server_at(mover.ips[0])
        new_server = network.server_at(mover.new_ips[0])
        assert old_server.policy.refuse_connections
        assert not new_server.policy.refuse_connections
        # DNS now points at the new addresses.
        response = fleet.dns_backend.query(
            Message.make_query(Name.from_text(mover.mail_hostname), RRType.A),
            now=clock.now,
        )
        assert {rr.rdata.to_text() for rr in response.answers} == set(mover.new_ips)


class TestDeterminism:
    def test_same_population_same_fleet(self, population):
        a = build_fleet(population)
        b = build_fleet(population)
        assert [u.category for u in a.units] == [u.category for u in b.units]
        assert [u.behavior_name for u in a.units] == [u.behavior_name for u in b.units]
