"""Tests for the patch-behavior model."""

import datetime as dt

import pytest

from repro.clock import (
    FINAL_MEASUREMENT,
    INITIAL_MEASUREMENT,
    PRIVATE_NOTIFICATION,
    PUBLIC_DISCLOSURE,
    SimulatedClock,
)
from repro.internet.mta_fleet import build_fleet
from repro.internet.patching import PatchBehaviorModel, PatchTrigger
from repro.internet.population import (
    Domain,
    DomainSet,
    PopulationConfig,
    generate_population,
)
from repro.internet.mta_fleet import HostingUnit, UnitCategory


def unit_with(tld="com", domains_count=1, sets=DomainSet.ALEXA_TOP_LIST, vulnerable=True):
    domains = [
        Domain(name=f"d{i}.{tld}", tld=tld, sets=sets, alexa_rank=5000 + i)
        for i in range(domains_count)
    ]
    return HostingUnit(
        unit_id=0,
        domains=domains,
        ips=["10.0.0.1"],
        mail_hostname=f"mx.d0.{tld}",
        category=UnitCategory.SPF_NOMSG,
        behavior_name="vulnerable-libspf2" if vulnerable else "rfc-compliant",
    )


def patch_rate(tld, *, n=400, seed=0, **unit_kwargs):
    hits = 0
    for i in range(n):
        model = PatchBehaviorModel(seed=seed + i)
        unit = unit_with(tld=tld, **unit_kwargs)
        plan = model.plan_for(unit)
        if plan.patches and plan.patch_date <= FINAL_MEASUREMENT:
            hits += 1
    return hits / n


class TestPlanBasics:
    def test_non_vulnerable_units_never_plan(self):
        model = PatchBehaviorModel(seed=1)
        plan = model.plan_for(unit_with(vulnerable=False))
        assert not plan.patches
        assert plan.trigger == PatchTrigger.NONE

    def test_plans_cached(self):
        model = PatchBehaviorModel(seed=1)
        unit = unit_with()
        assert model.plan_for(unit) is model.plan_for(unit)

    def test_patch_dates_never_before_campaign(self):
        for seed in range(200):
            model = PatchBehaviorModel(seed=seed)
            plan = model.plan_for(unit_with())
            if plan.patches:
                assert plan.patch_date > INITIAL_MEASUREMENT

    def test_patched_by(self):
        model = PatchBehaviorModel(seed=1)
        for seed in range(100):
            plan = PatchBehaviorModel(seed=seed).plan_for(unit_with())
            if plan.patches:
                assert plan.patched_by(plan.patch_date)
                assert not plan.patched_by(plan.patch_date - dt.timedelta(days=1))


class TestTldEffects:
    def test_za_patches_most(self):
        assert patch_rate("za") > 0.6

    def test_za_patches_early(self):
        """98% of .za patching happened before the private notification."""
        early = total = 0
        for seed in range(300):
            plan = PatchBehaviorModel(seed=seed).plan_for(unit_with(tld="za"))
            if plan.patches:
                total += 1
                if plan.patch_date < PRIVATE_NOTIFICATION + dt.timedelta(days=15):
                    early += 1
        assert total > 0
        assert early / total > 0.8

    def test_tw_never_patches(self):
        assert patch_rate("tw", n=150) == 0.0

    def test_ru_rarely_patches(self):
        assert patch_rate("ru") < 0.08

    def test_com_reference_rate(self):
        rate = patch_rate("com")
        assert 0.08 < rate < 0.30  # 15% target with small-unit boost

    def test_ordering_matches_table5(self):
        assert patch_rate("za") > patch_rate("de") > patch_rate("ru")


class TestSizeAndRankEffects:
    def test_alexa_1000_penalized(self):
        top_rate = patch_rate(
            "com", sets=DomainSet.ALEXA_TOP_LIST | DomainSet.ALEXA_1000
        )
        bulk_rate = patch_rate("com")
        assert top_rate < bulk_rate

    def test_providers_never_patch(self):
        rate = patch_rate(
            "com",
            sets=DomainSet.TOP_EMAIL_PROVIDERS | DomainSet.ALEXA_1000,
            n=150,
        )
        assert rate == 0.0

    def test_large_units_patch_less(self):
        small = patch_rate("com", domains_count=1)
        large = patch_rate("com", domains_count=30)
        assert large < small


class TestNotificationCoupling:
    def test_opened_notification_sometimes_accelerates(self):
        changed = 0
        for seed in range(600):
            model = PatchBehaviorModel(seed=seed)
            unit = unit_with(tld="ru")  # almost never patches on its own
            model.plan_for(unit)
            if model.on_notification_opened(unit, PRIVATE_NOTIFICATION):
                changed += 1
                plan = model.plan_for(unit)
                assert plan.trigger == PatchTrigger.PRIVATE_NOTIFICATION
                assert PRIVATE_NOTIFICATION < plan.patch_date < PUBLIC_DISCLOSURE
        # ~2% response probability, further thinned by the date window.
        assert 0 < changed < 60

    def test_already_patched_units_unaffected(self):
        for seed in range(100):
            model = PatchBehaviorModel(seed=seed)
            unit = unit_with(tld="za")
            plan = model.plan_for(unit)
            if plan.patches and plan.patch_date < PRIVATE_NOTIFICATION:
                assert not model.on_notification_opened(unit, PRIVATE_NOTIFICATION)


class TestApplication:
    def test_apply_schedules_and_fires(self):
        population = generate_population(PopulationConfig(scale=0.01, seed=2))
        fleet = build_fleet(population)
        clock = SimulatedClock()
        from repro.dns import CachingResolver

        network = fleet.build_network(
            lambda: clock.now, CachingResolver(clock=lambda: clock.now)
        )
        model = PatchBehaviorModel(seed=2)
        scheduled = model.apply(fleet, network, clock)
        assert scheduled > 0
        clock.advance_to(FINAL_MEASUREMENT + dt.timedelta(days=40))
        patched_servers = sum(
            1
            for unit in fleet.vulnerable_units()
            for ip in unit.ips
            if not network.server_at(ip).is_vulnerable
        )
        planned = sum(
            len(unit.ips)
            for unit in fleet.vulnerable_units()
            if model.plan_for(unit).patches
        )
        assert patched_servers == planned
