"""Tests for the seeded RNG."""

import collections

from repro.internet.rng import SeededRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        assert [a.randint(0, 1000) for _ in range(20)] == [
            b.randint(0, 1000) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.randint(0, 10**6) for _ in range(5)] != [
            b.randint(0, 10**6) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        # CRC-based derivation: stable across processes and runs.
        a = SeededRng(42).fork("population")
        b = SeededRng(42).fork("population")
        assert a.seed == b.seed
        assert a.randint(0, 10**6) == b.randint(0, 10**6)

    def test_fork_labels_isolate(self):
        base = SeededRng(42)
        assert base.fork("x").seed != base.fork("y").seed

    def test_fork_does_not_consume_parent_stream(self):
        a = SeededRng(42)
        b = SeededRng(42)
        a.fork("anything")
        assert a.randint(0, 10**6) == b.randint(0, 10**6)


class TestSampling:
    def test_bernoulli_extremes(self):
        rng = SeededRng(1)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rate(self):
        rng = SeededRng(7)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    def test_weighted_choice_respects_weights(self):
        rng = SeededRng(3)
        counts = collections.Counter(
            rng.weighted_choice({"a": 9.0, "b": 1.0}) for _ in range(2000)
        )
        assert counts["a"] > counts["b"] * 4

    def test_weighted_choice_zero_weight_never_chosen(self):
        rng = SeededRng(3)
        assert all(
            rng.weighted_choice({"a": 1.0, "b": 0.0}) == "a" for _ in range(200)
        )

    def test_categorical_pairs(self):
        rng = SeededRng(3)
        assert rng.categorical([("only", 1.0)]) == "only"

    def test_zipf_heavy_tail(self):
        rng = SeededRng(5)
        sizes = [rng.zipf_size(alpha=1.6) for _ in range(3000)]
        assert min(sizes) == 1
        assert max(sizes) > 20  # some large values appear
        assert sorted(sizes)[len(sizes) // 2] <= 5  # median stays small

    def test_exponential_days_mean(self):
        rng = SeededRng(11)
        draws = [rng.exponential_days(10.0) for _ in range(4000)]
        assert 9.0 < sum(draws) / len(draws) < 11.0

    def test_exponential_zero_mean(self):
        assert SeededRng(1).exponential_days(0.0) == 0.0


class TestTextHelpers:
    def test_label_alphanumeric(self):
        rng = SeededRng(1)
        label = rng.label(8)
        assert len(label) == 8
        assert label.isalnum() and label == label.lower()

    def test_domain_word_shape(self):
        rng = SeededRng(1)
        for _ in range(20):
            word = rng.domain_word()
            assert 4 <= len(word) <= 12
            assert word.isalpha()

    def test_shuffle_and_sample(self):
        rng = SeededRng(1)
        items = list(range(10))
        sample = rng.sample(items, 3)
        assert len(set(sample)) == 3
        rng.shuffle(items)
        assert sorted(items) == list(range(10))
