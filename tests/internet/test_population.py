"""Tests for domain population generation."""

import pytest

from repro.internet.population import (
    DomainSet,
    PopulationConfig,
    TOP_EMAIL_PROVIDER_DOMAINS,
    generate_population,
)


@pytest.fixture(scope="module")
def population():
    return generate_population(PopulationConfig(scale=0.01, seed=7))


class TestSizes:
    def test_set_sizes_scale(self, population):
        config = population.config
        assert population.set_size(DomainSet.ALEXA_TOP_LIST) == config.alexa_size
        assert population.set_size(DomainSet.TWO_WEEK_MX) == config.two_week_size
        assert population.set_size(DomainSet.ALEXA_1000) == config.alexa_1000_size

    def test_scale_one_hundredth(self):
        config = PopulationConfig(scale=0.01)
        assert config.alexa_size == 4188
        assert config.two_week_size == 229
        assert config.alexa_1000_size == 20

    def test_minimums_at_tiny_scale(self):
        config = PopulationConfig(scale=0.0001)
        assert config.alexa_size >= 200
        assert config.two_week_size >= 60
        assert config.alexa_1000_size >= 20

    def test_providers_always_full(self, population):
        assert population.set_size(DomainSet.TOP_EMAIL_PROVIDERS) == len(
            TOP_EMAIL_PROVIDER_DOMAINS
        )


class TestStructure:
    def test_alexa_1000_is_subset_of_top_list(self, population):
        top = population.in_set(DomainSet.ALEXA_1000)
        assert all(d.in_set(DomainSet.ALEXA_TOP_LIST) for d in top)

    def test_alexa_ranks_unique_and_contiguous(self, population):
        ranks = sorted(
            d.alexa_rank
            for d in population.in_set(DomainSet.ALEXA_TOP_LIST)
        )
        assert ranks == list(range(1, len(ranks) + 1))

    def test_alexa_1000_is_the_head_of_the_ranking(self, population):
        top = population.in_set(DomainSet.ALEXA_1000)
        max_top_rank = max(d.alexa_rank for d in top)
        assert max_top_rank == len(top)

    def test_two_week_domains_have_query_counts(self, population):
        for domain in population.in_set(DomainSet.TWO_WEEK_MX):
            assert domain.mx_query_count is not None
            assert domain.mx_query_count >= 1

    def test_no_duplicate_names(self, population):
        names = [d.name for d in population.domains]
        assert len(names) == len(set(names))

    def test_tld_attribute_matches_name(self, population):
        for domain in population.domains[:200]:
            assert domain.name.endswith("." + domain.tld)

    def test_lookup_by_name(self, population):
        domain = population.domains[0]
        assert population.get(domain.name) is domain
        assert domain.name in population
        assert population.get("definitely-not-generated.zz") is None


class TestOverlaps:
    def test_two_week_alexa_overlap_ratio(self, population):
        overlap = population.overlap(DomainSet.TWO_WEEK_MX, DomainSet.ALEXA_TOP_LIST)
        two_week = population.set_size(DomainSet.TWO_WEEK_MX)
        # Paper Table 1: 12.7% of the 2-Week MX set is in the Alexa list.
        assert abs(overlap / two_week - 0.1275) < 0.03

    def test_two_week_alexa1000_overlap_small(self, population):
        overlap = population.overlap(DomainSet.TWO_WEEK_MX, DomainSet.ALEXA_1000)
        assert overlap <= population.overlap(
            DomainSet.TWO_WEEK_MX, DomainSet.ALEXA_TOP_LIST
        )

    def test_overlap_symmetric_in_count(self, population):
        assert population.overlap(
            DomainSet.TWO_WEEK_MX, DomainSet.ALEXA_TOP_LIST
        ) == population.overlap(DomainSet.ALEXA_TOP_LIST, DomainSet.TWO_WEEK_MX)

    def test_self_overlap_is_size(self, population):
        for domain_set in (DomainSet.ALEXA_TOP_LIST, DomainSet.TWO_WEEK_MX):
            assert population.overlap(domain_set, domain_set) == population.set_size(
                domain_set
            )


class TestTldMix:
    def test_com_dominates_both_sets(self, population):
        for domain_set in (DomainSet.ALEXA_TOP_LIST, DomainSet.TWO_WEEK_MX):
            counts = population.tld_counts(domain_set)
            assert max(counts, key=counts.get) == "com"

    def test_alexa_com_share_near_paper(self, population):
        counts = population.tld_counts(DomainSet.ALEXA_TOP_LIST)
        share = counts["com"] / population.set_size(DomainSet.ALEXA_TOP_LIST)
        assert abs(share - 0.551) < 0.05  # 230,801 / 418,842


class TestProviders:
    def test_vulnerable_providers_present(self, population):
        for name in ("naver.com", "mail.ru", "wp.pl", "seznam.cz"):
            domain = population.get(name)
            assert domain is not None
            assert domain.in_set(DomainSet.TOP_EMAIL_PROVIDERS)
            assert domain.in_set(DomainSet.ALEXA_1000)

    def test_providers_hold_top_ranks(self, population):
        providers = population.in_set(DomainSet.TOP_EMAIL_PROVIDERS)
        assert max(d.alexa_rank for d in providers) == len(providers)


class TestDeterminism:
    def test_same_config_same_population(self):
        a = generate_population(PopulationConfig(scale=0.005, seed=3))
        b = generate_population(PopulationConfig(scale=0.005, seed=3))
        assert [d.name for d in a.domains] == [d.name for d in b.domains]

    def test_different_seed_different_names(self):
        a = generate_population(PopulationConfig(scale=0.005, seed=3))
        b = generate_population(PopulationConfig(scale=0.005, seed=4))
        assert [d.name for d in a.domains] != [d.name for d in b.domains]
