"""Tests for the geolocation model."""

import pytest

from repro.internet.geo import GeoDatabase, GeoLocation, assign_geography
from repro.internet.mta_fleet import build_fleet
from repro.internet.population import PopulationConfig, generate_population
from repro.internet.tld import TldModel


@pytest.fixture(scope="module")
def fleet():
    return build_fleet(generate_population(PopulationConfig(scale=0.01, seed=5)))


@pytest.fixture(scope="module")
def geo(fleet):
    return assign_geography(fleet, seed=5)


class TestAssignment:
    def test_every_ip_located(self, fleet, geo):
        for unit in fleet.units:
            for ip in unit.all_ips:
                assert geo.locate(ip) is not None

    def test_cc_tld_units_placed_in_their_country(self, fleet, geo):
        for unit in fleet.units:
            country = TldModel.country_for(unit.primary_tld)
            if country is not None:
                assert unit.country == country
                assert geo.locate(unit.ips[0]).country == country

    def test_generic_tld_units_spread_across_countries(self, fleet, geo):
        com_countries = {
            unit.country for unit in fleet.units if unit.primary_tld == "com"
        }
        assert len(com_countries) >= 5

    def test_jitter_bounded(self, fleet, geo):
        for unit in fleet.units[:100]:
            base_lat, base_lon = TldModel.coords_for_country(unit.country)
            for ip in unit.ips:
                location = geo.locate(ip)
                assert abs(location.latitude - base_lat) <= 4.01
                assert abs(location.longitude - base_lon) <= 4.01

    def test_coordinates_in_valid_range(self, fleet, geo):
        for unit in fleet.units[:200]:
            location = geo.locate(unit.ips[0])
            assert -90 <= location.latitude <= 90
            assert -180 <= location.longitude <= 180

    def test_deterministic(self, fleet):
        a = assign_geography(fleet, seed=5)
        b = assign_geography(fleet, seed=5)
        ip = fleet.units[0].ips[0]
        assert a.locate(ip) == b.locate(ip)


class TestBuckets:
    def test_bucket_math(self):
        location = GeoLocation(latitude=52.5, longitude=13.4, country="Germany")
        assert location.bucket(10.0) == (5, 1)
        assert location.bucket(5.0) == (10, 2)

    def test_negative_coordinates_bucket(self):
        location = GeoLocation(latitude=-26.2, longitude=28.0, country="South Africa")
        assert location.bucket(10.0) == (-3, 2)

    def test_bucket_counts(self, fleet, geo):
        ips = [unit.ips[0] for unit in fleet.units[:500]]
        counts = geo.bucket_counts(ips)
        assert sum(counts.values()) == len(ips)

    def test_country_counts(self, fleet, geo):
        ips = [unit.ips[0] for unit in fleet.units]
        counts = geo.country_counts(ips)
        assert sum(counts.values()) == len(ips)
        assert "United States" in counts

    def test_unknown_ips_skipped(self, geo):
        assert geo.bucket_counts(["203.0.113.254"]) == {}
