"""Tests for the `python -m repro` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import ARTIFACT_NAMES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACT_NAMES:
            assert name in out

    def test_single_artifact(self, capsys):
        assert main(["--scale", "0.002", "--seed", "5", "--artifact", "table6"]) == 0
        out = capsys.readouterr().out
        assert "Debian" in out
        assert "Unpatched" in out

    def test_report_and_csv(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--report", str(report),
                    "--export-csv", str(csv_dir),
                ]
            )
            == 0
        )
        assert "Paper-target scorecard" in report.read_text()
        assert (csv_dir / "figure7.csv").exists()
        # Regression: the probe-execution summary must print on the
        # report/CSV-only path, not just the artifact path.
        out = capsys.readouterr().out
        assert "probe execution:" in out

    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--artifact", "table6",
                    "--trace", str(trace),
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        lines = trace.read_text().splitlines()
        assert lines, "trace file is empty"
        for line in lines[:50]:
            decoded = json.loads(line)
            assert decoded["vt"] is not None
        payload = json.loads(metrics.read_text())
        assert payload["scale"] == 0.002
        assert payload["metrics"]["counters"]["exec.probes"]["total"] > 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics written" in out

    def test_log_level_flag(self, capsys):
        import logging

        logger = logging.getLogger("repro")
        try:
            self._run_with_log_level(capsys)
        finally:
            logger.handlers.clear()
            logger.setLevel(logging.NOTSET)

    def _run_with_log_level(self, capsys):
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--artifact", "table6",
                    "--log-level", "INFO",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "INFO repro" in err

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--list"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout


class TestRunResumeCli:
    BASE = ["--scale", "0.002", "--seed", "5", "--artifact", "table6"]

    def test_run_subcommand_without_deprecation_notice(self, capsys):
        assert main(["run", *self.BASE]) == 0
        captured = capsys.readouterr()
        assert "Debian" in captured.out
        assert "deprecated" not in captured.err

    def test_legacy_top_level_flags_print_a_notice(self, capsys):
        assert main(self.BASE) == 0
        captured = capsys.readouterr()
        assert "Debian" in captured.out
        assert "deprecated" in captured.err
        assert "python -m repro run" in captured.err

    def test_abort_after_round_requires_store(self, capsys):
        assert main(["run", *self.BASE, "--abort-after-round", "1"]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_run_abort_resume_trace_identical(self, tmp_path, capsys):
        store = tmp_path / "store"
        full = tmp_path / "full.jsonl"
        resumed = tmp_path / "resumed.jsonl"

        assert main(["run", *self.BASE, "--trace", str(full)]) == 0

        assert main([
            "run", *self.BASE, "--store", str(store),
            "--abort-after-round", "1",
            "--trace", str(tmp_path / "unused.jsonl"),
        ]) == 0
        captured = capsys.readouterr()
        assert "run aborted: aborted after round 1" in captured.out
        # An aborted run emits no artifacts — only the checkpoint chain.
        assert not (tmp_path / "unused.jsonl").exists()

        assert main([
            "resume", "--store", str(store),
            "--scale", "0.002", "--seed", "5",
            "--artifact", "table6", "--trace", str(resumed),
        ]) == 0
        out = capsys.readouterr().out
        assert "Resuming run-" in out
        assert "1 rounds completed" in out
        assert resumed.read_bytes() == full.read_bytes()

        assert main(["trace", "diff", str(full), str(resumed)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_resume_config_mismatch_exits_2(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main([
            "run", *self.BASE, "--store", str(store),
            "--abort-after-round", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["resume", "--store", str(store), "--scale", "0.05"]) == 2
        err = capsys.readouterr().err
        assert "resume failed" in err
        assert "no stored run matches" in err

    def test_resume_empty_store_exits_2(self, tmp_path, capsys):
        assert main(["resume", "--store", str(tmp_path / "empty")]) == 2
        assert "no checkpointed runs" in capsys.readouterr().err


@pytest.fixture(scope="module")
def smoke_traces(tmp_path_factory):
    """Serial and sharded traced runs of the same seed, for trace tooling."""
    root = tmp_path_factory.mktemp("traces")
    serial = root / "serial.jsonl"
    sharded = root / "sharded.jsonl"
    assert main([
        "--scale", "0.002", "--seed", "5",
        "--artifact", "table6", "--trace", str(serial),
    ]) == 0
    assert main([
        "--scale", "0.002", "--seed", "5", "--workers", "3",
        "--artifact", "table6", "--trace", str(sharded),
    ]) == 0
    return serial, sharded


class TestTraceSubcommands:
    def test_summary_prints_markdown(self, smoke_traces, capsys):
        serial, _ = smoke_traces
        capsys.readouterr()
        assert main(["trace", "summary", str(serial)]) == 0
        out = capsys.readouterr().out
        assert "# Trace summary" in out
        assert "## Stages" in out
        assert "| initial |" in out
        assert "Critical path" in out
        assert "p50" in out

    def test_summary_writes_out_and_folded_files(self, smoke_traces, tmp_path, capsys):
        serial, _ = smoke_traces
        out_file = tmp_path / "summary.md"
        folded = tmp_path / "trace.folded"
        capsys.readouterr()
        assert main([
            "trace", "summary", str(serial),
            "--out", str(out_file), "--folded", str(folded),
        ]) == 0
        assert "# Trace summary" in out_file.read_text()
        for line in folded.read_text().splitlines():
            path, value = line.rsplit(" ", 1)
            assert path.startswith("campaign;")
            assert int(value) > 0

    def test_summary_json_file_and_stdout(self, smoke_traces, tmp_path, capsys):
        serial, _ = smoke_traces
        out_file = tmp_path / "summary.json"
        capsys.readouterr()
        assert main([
            "trace", "summary", str(serial), "--json", str(out_file),
        ]) == 0
        captured = capsys.readouterr()
        # --json FILE suppresses the markdown (machine consumers get one
        # artifact), with a stderr notice saying where it went.
        assert "# Trace summary" not in captured.out
        assert "summary JSON" in captured.err
        payload = json.loads(out_file.read_text())
        assert payload["events"] > 0
        assert payload["stages"][0]["name"] == "initial"
        assert payload["critical_path"]
        # "-" streams the same JSON to stdout instead.
        assert main(["trace", "summary", str(serial), "--json", "-"]) == 0
        streamed = json.loads(capsys.readouterr().out)
        assert streamed["events"] == payload["events"]

    def test_profile_json_matches_markdown_run(self, tmp_path, capsys):
        perf_dir = tmp_path / "perf"
        trace = tmp_path / "trace.jsonl"
        assert main([
            "run", "--scale", "0.002", "--seed", "5", "--artifact", "table6",
            "--trace", str(trace), "--perf", str(perf_dir),
        ]) == 0
        out_file = tmp_path / "profile.json"
        capsys.readouterr()
        assert main([
            "trace", "profile", str(trace), "--perf", str(perf_dir),
            "--json", str(out_file),
        ]) == 0
        captured = capsys.readouterr()
        assert "# Wall-clock profile" not in captured.out
        payload = json.loads(out_file.read_text())
        assert payload["records"] > 0
        assert payload["stages"], "profile JSON must carry stage rows"
        for row in payload["stages"]:
            assert set(row) >= {"name", "virtual", "wall", "wall_per_probe_us"}
        assert payload["spans"]

    def test_diff_serial_vs_sharded_reports_identical(self, smoke_traces, capsys):
        serial, sharded = smoke_traces
        capsys.readouterr()
        assert main(["trace", "diff", str(serial), str(sharded)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_pinpoints_a_corrupted_event(self, smoke_traces, tmp_path, capsys):
        serial, _ = smoke_traces
        lines = serial.read_text().splitlines()
        target = 7
        payload = json.loads(lines[target])
        payload["attrs"]["corrupted"] = True
        lines[target] = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        corrupted = tmp_path / "corrupted.jsonl"
        corrupted.write_text("\n".join(lines) + "\n")
        capsys.readouterr()
        assert main(["trace", "diff", str(serial), str(corrupted)]) == 1
        out = capsys.readouterr().out
        assert f"first divergence at event {target}" in out
        assert "attrs['corrupted']" in out

    def test_progress_flag_renders_to_stderr_without_touching_trace(
        self, smoke_traces, tmp_path, capsys
    ):
        serial, _ = smoke_traces
        progress_trace = tmp_path / "progress.jsonl"
        assert main([
            "--scale", "0.002", "--seed", "5", "--artifact", "table6",
            "--trace", str(progress_trace), "--progress",
        ]) == 0
        err = capsys.readouterr().err
        assert "stage initial:" in err
        assert "probes/s" in err and "ETA" in err
        # --progress must not alter the trace bytes
        assert progress_trace.read_bytes() == serial.read_bytes()

    def test_run_perf_then_trace_profile(self, smoke_traces, tmp_path, capsys):
        serial, _ = smoke_traces
        perf_dir = tmp_path / "perf"
        perf_trace = tmp_path / "perf.jsonl"
        assert main([
            "run", "--scale", "0.002", "--seed", "5", "--artifact", "table6",
            "--trace", str(perf_trace), "--perf", str(perf_dir),
            "--progress",
        ]) == 0
        captured = capsys.readouterr()
        assert "perf:" in captured.out and "span records" in captured.out
        # --progress grows RSS/sample cells when perf is on.
        assert "rss" in captured.err and "samples" in captured.err
        # the sideband never alters the canonical trace bytes
        assert perf_trace.read_bytes() == serial.read_bytes()
        assert (perf_dir / "perf.jsonl").stat().st_size > 0
        assert (perf_dir / "perf_samples.jsonl").stat().st_size > 0

        profile_md = tmp_path / "profile.md"
        folded = tmp_path / "wall.folded"
        assert main([
            "trace", "profile", str(perf_trace), "--perf", str(perf_dir),
            "--out", str(profile_md), "--folded", str(folded),
        ]) == 0
        text = profile_md.read_text()
        assert "# Wall-clock profile" in text
        assert "## Wall vs virtual attribution by stage" in text
        assert "## Hottest span types" in text
        assert "## Cache efficiency" in text
        for line in folded.read_text().splitlines():
            path, value = line.rsplit(" ", 1)
            assert path.startswith("campaign;")
            assert int(value) >= 0

    def test_perf_without_trace_flag_still_profiles(self, tmp_path, capsys):
        # --perf implies tracing even when no --trace file is requested.
        perf_dir = tmp_path / "perf"
        assert main([
            "run", "--scale", "0.002", "--seed", "5", "--artifact", "table6",
            "--perf", str(perf_dir),
        ]) == 0
        assert "perf:" in capsys.readouterr().out
        assert (perf_dir / "perf.jsonl").stat().st_size > 0

    def test_metrics_out_carries_histogram_percentiles(self, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        assert main([
            "--scale", "0.002", "--seed", "5", "--artifact", "table6",
            "--metrics-out", str(metrics),
        ]) == 0
        payload = json.loads(metrics.read_text())
        summary = payload["histogram_percentiles"]
        assert summary["dns.queries_per_probe"]["count"] > 0
        for key in ("p50", "p90", "p99"):
            assert key in summary["dns.queries_per_probe"]
