"""Tests for the `python -m repro` command-line interface."""

import subprocess
import sys

import pytest

from repro.__main__ import ARTIFACT_NAMES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACT_NAMES:
            assert name in out

    def test_single_artifact(self, capsys):
        assert main(["--scale", "0.002", "--seed", "5", "--artifact", "table6"]) == 0
        out = capsys.readouterr().out
        assert "Debian" in out
        assert "Unpatched" in out

    def test_report_and_csv(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--report", str(report),
                    "--export-csv", str(csv_dir),
                ]
            )
            == 0
        )
        assert "Paper-target scorecard" in report.read_text()
        assert (csv_dir / "figure7.csv").exists()

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--list"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout
