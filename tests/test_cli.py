"""Tests for the `python -m repro` command-line interface."""

import json
import subprocess
import sys

import pytest

from repro.__main__ import ARTIFACT_NAMES, main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ARTIFACT_NAMES:
            assert name in out

    def test_single_artifact(self, capsys):
        assert main(["--scale", "0.002", "--seed", "5", "--artifact", "table6"]) == 0
        out = capsys.readouterr().out
        assert "Debian" in out
        assert "Unpatched" in out

    def test_report_and_csv(self, tmp_path, capsys):
        report = tmp_path / "report.md"
        csv_dir = tmp_path / "csv"
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--report", str(report),
                    "--export-csv", str(csv_dir),
                ]
            )
            == 0
        )
        assert "Paper-target scorecard" in report.read_text()
        assert (csv_dir / "figure7.csv").exists()
        # Regression: the probe-execution summary must print on the
        # report/CSV-only path, not just the artifact path.
        out = capsys.readouterr().out
        assert "probe execution:" in out

    def test_trace_and_metrics_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--artifact", "table6",
                    "--trace", str(trace),
                    "--metrics-out", str(metrics),
                ]
            )
            == 0
        )
        lines = trace.read_text().splitlines()
        assert lines, "trace file is empty"
        for line in lines[:50]:
            decoded = json.loads(line)
            assert decoded["vt"] is not None
        payload = json.loads(metrics.read_text())
        assert payload["scale"] == 0.002
        assert payload["metrics"]["counters"]["exec.probes"]["total"] > 0
        out = capsys.readouterr().out
        assert "trace:" in out and "metrics written" in out

    def test_log_level_flag(self, capsys):
        import logging

        logger = logging.getLogger("repro")
        try:
            self._run_with_log_level(capsys)
        finally:
            logger.handlers.clear()
            logger.setLevel(logging.NOTSET)

    def _run_with_log_level(self, capsys):
        assert (
            main(
                [
                    "--scale", "0.002", "--seed", "5",
                    "--artifact", "table6",
                    "--log-level", "INFO",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "INFO repro" in err

    def test_module_invocation(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--list"],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0
        assert "table1" in proc.stdout
