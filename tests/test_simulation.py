"""Tests for the top-level Simulation facade."""

import pytest

from repro.api import RunConfig
from repro.simulation import Simulation


class TestBuild:
    def test_components_wired(self, session_sim):
        assert session_sim.campaign.notifier is not None
        assert len(session_sim.geography) >= len(session_sim.fleet.all_ips)
        assert session_sim.population is session_sim.campaign.population

    def test_run_caches_result(self, session_sim):
        assert session_sim.run() is session_sim.run()

    def test_notification_report_none_before_run(self):
        sim = Simulation.build(config=RunConfig(scale=0.002, seed=99))
        assert sim.notification_report is None

    def test_inference_runs_campaign(self):
        sim = Simulation.build(config=RunConfig(scale=0.002, seed=98))
        engine = sim.inference()
        assert len(engine.rounds) == len(sim.run().rounds)


class TestShutdownOnFailure:
    def test_executor_released_when_the_campaign_raises(self, monkeypatch):
        """A raising run must still shut the executor down (try/finally)."""
        sim = Simulation.build(config=RunConfig(scale=0.002, seed=5))
        executor = sim.campaign.executor
        calls = []
        original = executor.shutdown
        monkeypatch.setattr(
            executor, "shutdown", lambda: (calls.append(True), original())
        )

        def boom(*, store=None):
            raise RuntimeError("probe infrastructure fell over")

        monkeypatch.setattr(sim.campaign, "run", boom)
        with pytest.raises(RuntimeError, match="fell over"):
            sim.run()
        assert calls == [True]
        assert sim.result is None  # a failed run caches nothing


class TestDeterminism:
    def test_two_builds_agree_on_headline_numbers(self):
        a = Simulation.build(config=RunConfig(scale=0.003, seed=77))
        b = Simulation.build(config=RunConfig(scale=0.003, seed=77))
        ra, rb = a.run(), b.run()
        assert len(ra.initial.ip_records) == len(rb.initial.ip_records)
        assert sorted(ra.initial.vulnerable_ips()) == sorted(rb.initial.vulnerable_ips())
        assert ra.snapshot_status == rb.snapshot_status
        assert [r.results for r in ra.rounds] == [r.results for r in rb.rounds]

    def test_different_seeds_differ(self):
        a = Simulation.build(config=RunConfig(scale=0.003, seed=77))
        b = Simulation.build(config=RunConfig(scale=0.003, seed=78))
        assert sorted(a.run().initial.vulnerable_ips()) != sorted(
            b.run().initial.vulnerable_ips()
        )
