"""Tests for the measurement-side query log."""

import datetime as dt

import pytest

from repro.dns.name import Name
from repro.dns.querylog import QueryLog
from repro.dns.rdata import RRType

BASE = Name.from_text("spf-test.dns-lab.org")
T0 = dt.datetime(2021, 10, 11, tzinfo=dt.timezone.utc)


@pytest.fixture()
def log():
    return QueryLog(BASE)


def record(log, name, rrtype=RRType.A, minutes=0, source="resolver"):
    return log.record(
        T0 + dt.timedelta(minutes=minutes), Name.from_text(name), rrtype, source
    )


class TestLabelExtraction:
    def test_id_and_suite_extracted(self, log):
        labels = log.extract_labels(Name.from_text("ab1.s9.spf-test.dns-lab.org"))
        assert labels == ("s9", "ab1")

    def test_prefix_labels_ignored_for_extraction(self, log):
        labels = log.extract_labels(
            Name.from_text("x.y.z.ab1.s9.spf-test.dns-lab.org")
        )
        assert labels == ("s9", "ab1")

    def test_case_normalized(self, log):
        labels = log.extract_labels(Name.from_text("AB1.S9.spf-test.dns-lab.org"))
        assert labels == ("s9", "ab1")

    def test_outside_base_is_none(self, log):
        assert log.extract_labels(Name.from_text("ab1.s9.other.org")) is None

    def test_too_shallow_is_none(self, log):
        assert log.extract_labels(Name.from_text("s9.spf-test.dns-lab.org")) is None


class TestEntriesFor:
    def test_indexed_by_labels(self, log):
        record(log, "ab1.s9.spf-test.dns-lab.org", RRType.TXT)
        record(log, "q.ab1.s9.spf-test.dns-lab.org")
        record(log, "q.zz9.s9.spf-test.dns-lab.org")
        assert len(log.entries_for("s9", "ab1")) == 2
        assert len(log.entries_for("s9", "zz9")) == 1
        assert log.entries_for("s9", "nope") == []

    def test_len_and_iter(self, log):
        record(log, "ab1.s9.spf-test.dns-lab.org")
        record(log, "other.org")  # outside base: stored, unindexed
        assert len(log) == 2
        assert len(list(log)) == 2


class TestExpansionPrefixes:
    def test_prefix_returned_for_address_queries(self, log):
        record(log, "com.com.example.ab1.s9.spf-test.dns-lab.org", RRType.A)
        prefixes = log.expansion_prefixes("s9", "ab1")
        assert [str(p) for p in prefixes] == ["com.com.example"]

    def test_txt_fetch_excluded(self, log):
        record(log, "ab1.s9.spf-test.dns-lab.org", RRType.TXT)
        assert log.expansion_prefixes("s9", "ab1") == []

    def test_bare_policy_name_excluded(self, log):
        # An A query for the policy name itself carries no expansion.
        record(log, "ab1.s9.spf-test.dns-lab.org", RRType.A)
        assert log.expansion_prefixes("s9", "ab1") == []

    def test_aaaa_also_counts(self, log):
        record(log, "x.ab1.s9.spf-test.dns-lab.org", RRType.AAAA)
        assert len(log.expansion_prefixes("s9", "ab1")) == 1

    def test_mx_queries_excluded(self, log):
        record(log, "x.ab1.s9.spf-test.dns-lab.org", RRType.MX)
        assert log.expansion_prefixes("s9", "ab1") == []


class TestPolicyFetch:
    def test_saw_policy_fetch(self, log):
        assert not log.saw_policy_fetch("s9", "ab1")
        record(log, "ab1.s9.spf-test.dns-lab.org", RRType.TXT)
        assert log.saw_policy_fetch("s9", "ab1")


class TestTimeSlicing:
    def test_between_is_half_open(self, log):
        record(log, "a.ab1.s9.spf-test.dns-lab.org", minutes=0)
        record(log, "b.ab1.s9.spf-test.dns-lab.org", minutes=5)
        record(log, "c.ab1.s9.spf-test.dns-lab.org", minutes=10)
        window = log.between(T0, T0 + dt.timedelta(minutes=10))
        assert len(window) == 2

    def test_clear(self, log):
        record(log, "a.ab1.s9.spf-test.dns-lab.org")
        log.clear()
        assert len(log) == 0
        assert log.entries_for("s9", "ab1") == []

    def test_entry_to_text(self, log):
        entry = record(log, "a.ab1.s9.spf-test.dns-lab.org", source="10.1.1.1")
        text = entry.to_text()
        assert "10.1.1.1" in text and "a.ab1.s9" in text
