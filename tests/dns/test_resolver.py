"""Tests for the caching resolver and stub resolver."""

import datetime as dt

import pytest

from repro.clock import SimulatedClock
from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdata import A, MX, RRType, TXT
from repro.dns.resolver import CachingResolver, StubResolver
from repro.dns.server import AuthoritativeServer, SpfTestResponder
from repro.dns.zone import Zone
from repro.errors import ResolutionError
from repro.obs import Observation, observing


@pytest.fixture()
def clock():
    return SimulatedClock()


@pytest.fixture()
def setup(clock):
    zone = Zone("example.com")
    zone.add("example.com", TXT("v=spf1 -all"))
    zone.add("example.com", MX(20, "mx2.example.com"))
    zone.add("example.com", MX(10, "mx1.example.com"))
    zone.add("mx1", A("192.0.2.1"))
    zone.add("mx2", A("192.0.2.2"))
    auth = AuthoritativeServer([zone])
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register("example.com", auth)
    return resolver, auth


class TestRouting:
    def test_routes_to_registered_backend(self, setup):
        resolver, _ = setup
        response = resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        assert response.answers

    def test_servfail_for_unrouted_name(self, setup):
        resolver, _ = setup
        response = resolver.query(
            Message.make_query(Name.from_text("other.org"), RRType.A)
        )
        assert response.rcode == Rcode.SERVFAIL

    def test_longest_suffix_wins(self, clock):
        broad = SpfTestResponder(Name.from_text("org"))
        narrow = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("org", broad)
        resolver.register("spf-test.dns-lab.org", narrow)
        resolver.query(
            Message.make_query(
                Name.from_text("x.id1.s1.spf-test.dns-lab.org"), RRType.A
            )
        )
        assert len(narrow.log) == 1
        assert len(broad.log) == 0

    def test_recursion_available_flag(self, setup):
        resolver, _ = setup
        response = resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        assert response.recursion_available


class TestCaching:
    def test_positive_cache_hit(self, setup):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()
        query()
        assert resolver.cache_hits == 1

    def test_cache_expires_with_ttl(self, setup, clock):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()
        clock.advance(dt.timedelta(seconds=301))  # zone default TTL is 300
        query()
        assert resolver.cache_hits == 0

    def test_negative_answers_cached(self, setup):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("missing.example.com"), RRType.A)
        )
        first = query()
        assert first.rcode == Rcode.NXDOMAIN
        second = query()
        assert second.rcode == Rcode.NXDOMAIN
        assert resolver.cache_hits == 1

    def test_flush_clears_cache(self, setup):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()
        resolver.flush()
        query()
        assert resolver.cache_hits == 0

    def test_unique_labels_defeat_caching(self, clock):
        """The measurement-critical property: every probe's unique labels
        guarantee its queries reach the measurement server uncached."""
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("spf-test.dns-lab.org", responder)
        for i in range(10):
            resolver.query(
                Message.make_query(
                    Name.from_text(f"id{i}.s1.spf-test.dns-lab.org"), RRType.TXT
                )
            )
        assert len(responder.log) == 10
        assert resolver.cache_hits == 0


class TestCacheCorrectness:
    """Regression tests for the PR-4 cache fixes (authority replay,
    RFC 2308 negative TTLs, exact-expiry boundary, metrics)."""

    def test_entry_dead_at_exact_expiry(self, setup, clock):
        """An entry whose lifetime has fully elapsed must not be served:
        ``expires > timestamp`` is strict, so at exactly TTL seconds the
        resolver goes back to the backend."""
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()
        clock.advance(dt.timedelta(seconds=300))  # exactly the zone TTL
        query()
        assert resolver.cache_hits == 0

    def test_entry_alive_just_before_expiry(self, setup, clock):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()
        clock.advance(dt.timedelta(seconds=299))
        query()
        assert resolver.cache_hits == 1

    def test_negative_ttl_honors_soa_minimum(self, clock):
        """RFC 2308: a negative answer is cacheable for min(SOA TTL,
        SOA.minimum), not a hardwired constant."""
        zone = Zone("example.com")
        zone.add("mx1", A("192.0.2.1"))
        zone.soa.rdata.minimum = 30  # much shorter than NEGATIVE_TTL
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("example.com", AuthoritativeServer([zone]))
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("missing.example.com"), RRType.A)
        )
        query()
        clock.advance(dt.timedelta(seconds=29))
        query()
        assert resolver.cache_hits == 1
        clock.advance(dt.timedelta(seconds=1))  # 30s: past the SOA minimum
        query()
        assert resolver.cache_hits == 1

    def test_negative_ttl_falls_back_without_soa(self, clock):
        """A negative answer with no SOA in the authority section keeps
        the flat NEGATIVE_TTL fallback."""

        class BareBackend:
            def query(self, message, *, source="", now=None):
                return message.make_response(Rcode.NXDOMAIN)

        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("bare.org", BareBackend())
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("gone.bare.org"), RRType.A)
        )
        first = query()
        assert not first.answers and not first.authority
        clock.advance(dt.timedelta(seconds=CachingResolver.NEGATIVE_TTL - 1))
        query()
        assert resolver.cache_hits == 1
        clock.advance(dt.timedelta(seconds=1))
        query()
        assert resolver.cache_hits == 1

    def test_zero_ttl_answers_never_cached(self, setup, clock):
        resolver, _ = setup
        zone = Zone("volatile.org", default_ttl=300)
        zone.add("fast", A("192.0.2.9"), ttl=0)
        resolver.register("volatile.org", AuthoritativeServer([zone]))
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("fast.volatile.org"), RRType.A)
        )
        query()
        query()
        assert resolver.cache_hits == 0

    def test_authority_section_replayed_on_hit(self, setup):
        """A cached negative answer must still carry the SOA authority
        record — downstream negative-TTL logic depends on it."""
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("missing.example.com"), RRType.A)
        )
        first = query()
        cached = query()
        assert resolver.cache_hits == 1
        assert cached.authority, "cache hit dropped the authority section"
        assert cached.authority == first.authority
        assert any(rr.rrtype == RRType.SOA for rr in cached.authority)

    def test_cached_response_identical_to_first(self, setup):
        """End to end: the first upstream answer and every cached replay
        of it must agree in every observable field."""
        resolver, _ = setup
        for qname, rrtype in (
            ("mx1.example.com", RRType.A),       # positive
            ("missing.example.com", RRType.A),   # negative
            ("example.com", RRType.MX),          # multi-record
        ):
            query = lambda: resolver.query(
                Message.make_query(Name.from_text(qname), rrtype)
            )
            first, cached = query(), query()
            assert cached.rcode == first.rcode
            assert cached.answers == first.answers
            assert cached.authority == first.authority
            assert cached.recursion_available == first.recursion_available

    def test_metrics_published_when_observing(self, setup):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        obs = Observation()
        with observing(obs):
            query()
            query()
        queries = obs.metrics.counter("dns.resolver.queries")
        hits = obs.metrics.counter("dns.resolver.cache_hits")
        assert queries.total == 2
        assert queries.by_key().get("A") == 2
        assert hits.total == 1
        assert hits.by_key().get("A") == 1

    def test_metrics_optional_without_observation(self, setup):
        """The resolver must not require an active Observation."""
        resolver, _ = setup
        response = resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        assert response.answers
        assert resolver.query_count == 1


class TestTtlDecay:
    """Regression tests for the PR-9 replay fix: cached records must be
    served with their *remaining* lifetime (RFC 1035 section 3.2.1), not
    the TTL they arrived with."""

    def test_answer_ttl_decays_on_cache_hit(self, setup, clock):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        first = query()
        assert first.answers[0].ttl == 300
        clock.advance(dt.timedelta(seconds=120))
        cached = query()
        assert resolver.cache_hits == 1
        assert cached.answers[0].ttl == 180

    def test_ttl_decays_monotonically_across_hits(self, setup, clock):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("example.com"), RRType.MX)
        )
        query()
        seen = []
        for _ in range(3):
            clock.advance(dt.timedelta(seconds=90))
            seen.append([rr.ttl for rr in query().answers])
        assert seen == [[210, 210], [120, 120], [30, 30]]
        assert resolver.cache_hits == 3

    def test_last_second_replay_serves_remaining_lifetime(self, setup, clock):
        """Just before expiry the record is alive with exactly 1 s left —
        never the original TTL, and never past its remaining lifetime."""
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx2.example.com"), RRType.A)
        )
        query()
        clock.advance(dt.timedelta(seconds=299))
        cached = query()
        assert resolver.cache_hits == 1
        assert cached.answers[0].ttl == 1

    def test_authority_ttl_decays_on_negative_hit(self, setup, clock):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("missing.example.com"), RRType.A)
        )
        first = query()
        soa_ttl = first.authority[0].ttl
        clock.advance(dt.timedelta(seconds=100))
        cached = query()
        assert resolver.cache_hits == 1
        assert cached.authority[0].ttl == soa_ttl - 100

    def test_zero_elapsed_replay_is_identical(self, setup):
        """With no clock movement the replay is indistinguishable from the
        first answer — decay must not perturb same-instant hits."""
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        first, cached = query(), query()
        assert cached.answers == first.answers


class _FlakyBackend:
    """Fails the first ``failures`` queries with ``rcode``, then recovers."""

    def __init__(self, healthy, failures=1, rcode=Rcode.SERVFAIL):
        self.healthy = healthy
        self.failures = failures
        self.rcode = rcode
        self.calls = 0

    def query(self, message, *, source="", now=None):
        self.calls += 1
        if self.calls <= self.failures:
            return message.make_response(self.rcode)
        return self.healthy.query(message, source=source, now=now)


class TestFailurePassthrough:
    """Regression tests for the PR-9 negative-caching fix: RFC 2308
    section 7 — only NXDOMAIN and NOERROR/NODATA are cacheable negatives;
    SERVFAIL and friends signal transient conditions and must pass
    through uncached."""

    @pytest.fixture()
    def flaky(self, clock):
        zone = Zone("example.com")
        zone.add("mx1", A("192.0.2.1"))
        backend = _FlakyBackend(AuthoritativeServer([zone]))
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("example.com", backend)
        return resolver, backend

    def test_servfail_not_cached(self, flaky, clock):
        resolver, backend = flaky
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        first = query()
        assert first.rcode == Rcode.SERVFAIL
        clock.advance(dt.timedelta(seconds=1))  # well inside NEGATIVE_TTL
        second = query()
        assert backend.calls == 2, "SERVFAIL was cached and masked recovery"
        assert second.rcode == Rcode.NOERROR
        assert second.answers
        assert resolver.cache_hits == 0

    def test_formerr_not_cached(self, flaky, clock):
        resolver, backend = flaky
        backend.rcode = Rcode.FORMERR
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        assert query().rcode == Rcode.FORMERR
        clock.advance(dt.timedelta(seconds=1))
        assert query().rcode == Rcode.NOERROR
        assert backend.calls == 2

    def test_recovered_answer_is_cached_normally(self, flaky, clock):
        resolver, backend = flaky
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.A)
        )
        query()  # SERVFAIL, uncached
        clock.advance(dt.timedelta(seconds=1))
        query()  # real answer, cached
        query()  # served from cache
        assert backend.calls == 2
        assert resolver.cache_hits == 1

    def test_nodata_negative_still_cached(self, setup, clock):
        """NOERROR with an empty answer section (NODATA) remains a
        cacheable negative — only *failures* pass through."""
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("mx1.example.com"), RRType.TXT)
        )
        first = query()
        assert first.rcode == Rcode.NOERROR and not first.answers
        query()
        assert resolver.cache_hits == 1

    def test_nxdomain_still_cached(self, setup):
        resolver, _ = setup
        query = lambda: resolver.query(
            Message.make_query(Name.from_text("missing.example.com"), RRType.A)
        )
        assert query().rcode == Rcode.NXDOMAIN
        query()
        assert resolver.cache_hits == 1


class TestStubResolver:
    def test_get_txt(self, setup, clock):
        resolver, _ = setup
        stub = StubResolver(resolver, clock=lambda: clock.now)
        assert stub.get_txt("example.com") == ["v=spf1 -all"]

    def test_get_mx_sorted_by_preference(self, setup, clock):
        resolver, _ = setup
        stub = StubResolver(resolver, clock=lambda: clock.now)
        exchanges = stub.get_mx("example.com")
        assert [pref for pref, _ in exchanges] == [10, 20]
        assert exchanges[0][1] == Name.from_text("mx1.example.com")

    def test_get_addresses(self, setup, clock):
        resolver, _ = setup
        stub = StubResolver(resolver, clock=lambda: clock.now)
        addresses = stub.get_addresses("mx1.example.com", want_ipv6=False)
        assert [str(a) for a in addresses] == ["192.0.2.1"]

    def test_nxdomain_returns_empty(self, setup, clock):
        resolver, _ = setup
        stub = StubResolver(resolver, clock=lambda: clock.now)
        assert stub.get_txt("nothing.example.com") == []

    def test_servfail_raises(self, setup, clock):
        resolver, _ = setup
        stub = StubResolver(resolver, clock=lambda: clock.now)
        with pytest.raises(ResolutionError):
            stub.get_txt("unrouted.org")

    def test_identity_reaches_query_log(self, clock):
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("spf-test.dns-lab.org", responder)
        stub = StubResolver(resolver, identity="10.9.8.7", clock=lambda: clock.now)
        stub.get_txt("aa.s1.spf-test.dns-lab.org")
        assert list(responder.log)[-1].source == "10.9.8.7"
