"""Tests for the RFC 1035 wire codec."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdata import A, MX, RRType, ResourceRecord, TXT
from repro.dns.wire import from_wire, to_wire
from repro.errors import WireFormatError


def _query(name="example.com", rrtype=RRType.A, **kwargs):
    return Message.make_query(Name.from_text(name), rrtype, **kwargs)


class TestRoundTrip:
    def test_query(self):
        message = _query("mail.example.com", RRType.TXT, id=99)
        decoded = from_wire(to_wire(message))
        assert decoded.id == 99
        assert decoded.question == message.question
        assert not decoded.is_response

    def test_response_with_answers(self):
        message = _query("a.com").make_response()
        message.authoritative = True
        message.answers = [
            ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1"), ttl=60),
            ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.2"), ttl=60),
        ]
        decoded = from_wire(to_wire(message))
        assert decoded.authoritative
        assert [rr.rdata.to_text() for rr in decoded.answers] == [
            "192.0.2.1",
            "192.0.2.2",
        ]
        assert decoded.answers[0].ttl == 60

    def test_rcode_preserved(self):
        message = _query().make_response(Rcode.NXDOMAIN)
        assert from_wire(to_wire(message)).rcode == Rcode.NXDOMAIN

    def test_all_sections(self):
        from repro.dns.rdata import SOA

        message = _query("x.example.com").make_response()
        message.answers = [
            ResourceRecord(name=Name.from_text("x.example.com"), rdata=A("192.0.2.1"))
        ]
        message.authority = [
            ResourceRecord(
                name=Name.from_text("example.com"),
                rdata=SOA("ns1.example.com", "root.example.com"),
            )
        ]
        message.additional = [
            ResourceRecord(name=Name.from_text("ns1.example.com"), rdata=A("192.0.2.53"))
        ]
        decoded = from_wire(to_wire(message))
        assert len(decoded.answers) == 1
        assert len(decoded.authority) == 1
        assert len(decoded.additional) == 1


class TestCompression:
    def test_repeated_owner_names_compress(self):
        message = _query("very-long-label-here.example.com").make_response()
        rr = ResourceRecord(
            name=Name.from_text("very-long-label-here.example.com"),
            rdata=A("192.0.2.1"),
        )
        message.answers = [rr, rr, rr]
        wire = to_wire(message)
        # Without compression each owner name costs ~34 bytes; compressed
        # repeats cost a 2-byte pointer.
        uncompressed_estimate = 12 + 4 + 34 + 3 * (34 + 14)
        assert len(wire) < uncompressed_estimate - 60
        decoded = from_wire(wire)
        assert all(a.name == rr.name for a in decoded.answers)

    def test_suffix_sharing(self):
        message = _query("a.example.com").make_response()
        message.answers = [
            ResourceRecord(name=Name.from_text("a.example.com"), rdata=A("192.0.2.1")),
            ResourceRecord(name=Name.from_text("b.example.com"), rdata=A("192.0.2.2")),
        ]
        decoded = from_wire(to_wire(message))
        assert decoded.answers[1].name == Name.from_text("b.example.com")


class TestMalformed:
    def test_too_short(self):
        with pytest.raises(WireFormatError):
            from_wire(b"\x00\x01")

    def test_truncated_question(self):
        wire = to_wire(_query("example.com"))
        with pytest.raises(WireFormatError):
            from_wire(wire[:-3])

    def test_forward_pointer_rejected(self):
        # Header + a name that is just a pointer pointing forward.
        header = struct.pack("!HHHHHH", 1, 0, 1, 0, 0, 0)
        bogus = header + struct.pack("!H", 0xC000 | 0x0FFF) + struct.pack("!HH", 1, 1)
        with pytest.raises(WireFormatError):
            from_wire(bogus)

    def test_bad_label_length_bits(self):
        header = struct.pack("!HHHHHH", 1, 0, 1, 0, 0, 0)
        bogus = header + b"\x80abc\x00" + struct.pack("!HH", 1, 1)
        with pytest.raises(WireFormatError):
            from_wire(bogus)


class TestCompressionBoundary:
    """Regression tests for the PR-9 off-by-one: pointers carry 14-bit
    offsets, so 0x3FFF itself is a legal compression target, and with
    ``compress=False`` no offsets should be registered at all."""

    def test_offset_0x3fff_is_a_legal_target(self):
        from repro.dns.wire import _Encoder

        enc = _Encoder()
        enc.out.extend(b"\x00" * 0x3FFF)  # place the next name at 0x3FFF
        name = Name(["boundary", "example", "com"])
        enc.write_name(name)
        assert enc.offsets[("boundary", "example", "com")] == 0x3FFF
        mark = len(enc.out)
        enc.write_name(name)
        # The repeat must compress to a pointer at the boundary offset —
        # the all-ones 14-bit pointer 0xC000 | 0x3FFF.
        assert bytes(enc.out[mark:]) == b"\xff\xff"

    def test_offsets_past_0x3fff_not_registered(self):
        from repro.dns.wire import _Encoder

        enc = _Encoder()
        enc.out.extend(b"\x00" * 0x4000)
        enc.write_name(Name(["past", "example", "com"]))
        assert ("past", "example", "com") not in enc.offsets

    def test_compress_false_registers_nothing(self):
        from repro.dns.wire import _Encoder

        enc = _Encoder()
        enc.write_name(Name(["a", "example", "com"]), compress=False)
        assert enc.offsets == {}

    def test_large_message_round_trips_across_boundary(self):
        """A message whose sections straddle 0x3FFF must still decode to
        the same names and payloads — pointers near the boundary included."""
        suffix = ["shared-suffix", "example", "com"]
        names = [Name([f"rec{i:04d}"] + suffix) for i in range(90)]
        message = Message.make_query(names[0], RRType.TXT).make_response()
        message.answers = [
            ResourceRecord(name=name, rdata=TXT("x" * 200)) for name in names
        ]
        wire = to_wire(message)
        assert len(wire) > 0x4000, "message too small to cross the boundary"
        decoded = from_wire(wire)
        assert [a.name for a in decoded.answers] == names
        assert all(a.rdata.text == "x" * 200 for a in decoded.answers)


label_st = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1,
    max_size=10,
)
name_st = st.lists(label_st, min_size=1, max_size=5).map(Name)


class TestProperties:
    @given(name_st, st.integers(min_value=0, max_value=0xFFFF))
    def test_query_roundtrip(self, name, message_id):
        message = Message.make_query(name, RRType.TXT, id=message_id)
        decoded = from_wire(to_wire(message))
        assert decoded.question.name == name
        assert decoded.id == message_id

    @given(st.lists(name_st, min_size=1, max_size=6))
    def test_answer_names_roundtrip(self, names):
        message = Message.make_query(names[0], RRType.A).make_response()
        message.answers = [
            ResourceRecord(name=name, rdata=A("192.0.2.1")) for name in names
        ]
        decoded = from_wire(to_wire(message))
        assert [a.name for a in decoded.answers] == names

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=70, max_value=110),
        st.integers(min_value=150, max_value=250),
        st.lists(label_st, min_size=1, max_size=3),
    )
    def test_boundary_straddling_messages_roundtrip(self, count, payload_len, suffix):
        """Messages sized to land records on either side of the 0x3FFF
        compression limit round-trip regardless of where names fall."""
        names = [Name([f"r{i:04d}"] + suffix) for i in range(count)]
        message = Message.make_query(names[0], RRType.TXT).make_response()
        message.answers = [
            ResourceRecord(name=name, rdata=TXT("p" * payload_len)) for name in names
        ]
        decoded = from_wire(to_wire(message))
        assert [a.name for a in decoded.answers] == names

    @given(st.text(min_size=0, max_size=300, alphabet=st.characters(min_codepoint=32, max_codepoint=126)))
    def test_txt_payload_roundtrip(self, text):
        message = Message.make_query(Name.from_text("t.example"), RRType.TXT)
        response = message.make_response()
        response.answers = [
            ResourceRecord(name=Name.from_text("t.example"), rdata=TXT(text))
        ]
        decoded = from_wire(to_wire(response))
        assert decoded.answers[0].rdata.text == text
