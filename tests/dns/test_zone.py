"""Tests for repro.dns.zone."""

import pytest

from repro.dns.name import Name
from repro.dns.rdata import A, CNAME, MX, RRType, TXT
from repro.dns.zone import LookupStatus, Zone
from repro.errors import DnsError


@pytest.fixture()
def zone():
    z = Zone("example.com")
    z.add("example.com", TXT("v=spf1 -all"))
    z.add("mail", A("192.0.2.25"))
    z.add("mail", A("192.0.2.26"))
    z.add("www", CNAME("mail.example.com"))
    z.add("a.b.deep", A("192.0.2.99"))
    z.add("*.wild", A("192.0.2.77"))
    return z


def _lookup(zone, name, rrtype=RRType.A):
    return zone.lookup(Name.from_text(name), rrtype)


class TestAdd:
    def test_relative_names_resolve_against_origin(self, zone):
        assert zone.rrset("mail", RRType.A)[0].name == Name.from_text(
            "mail.example.com"
        )

    def test_absolute_names_accepted(self, zone):
        zone.add("ftp.example.com", A("192.0.2.1"))
        assert zone.rrset("ftp", RRType.A)

    def test_out_of_zone_rejected(self, zone):
        with pytest.raises(DnsError):
            zone.add(Name.from_text("other.org"), A("192.0.2.1"))

    def test_len_counts_records(self, zone):
        # SOA + TXT + 2xA + CNAME + deep A + wildcard A
        assert len(zone) == 7

    def test_apex_soa_synthesized(self, zone):
        assert zone.soa.rrtype == RRType.SOA


class TestLookup:
    def test_exact_match(self, zone):
        result = _lookup(zone, "mail.example.com")
        assert result.status == LookupStatus.SUCCESS
        assert len(result.records) == 2

    def test_case_insensitive(self, zone):
        assert _lookup(zone, "MAIL.Example.COM").status == LookupStatus.SUCCESS

    def test_nodata_for_missing_type(self, zone):
        assert _lookup(zone, "mail.example.com", RRType.MX).status == LookupStatus.NODATA

    def test_nxdomain(self, zone):
        assert _lookup(zone, "missing.example.com").status == LookupStatus.NXDOMAIN

    def test_empty_non_terminal_is_nodata(self, zone):
        # "b.deep.example.com" exists only as an ancestor of a.b.deep.
        assert _lookup(zone, "b.deep.example.com").status == LookupStatus.NODATA

    def test_cname_redirection(self, zone):
        result = _lookup(zone, "www.example.com")
        assert result.status == LookupStatus.CNAME
        assert result.cname_target == Name.from_text("mail.example.com")

    def test_cname_query_type_gets_record(self, zone):
        assert (
            _lookup(zone, "www.example.com", RRType.CNAME).status
            == LookupStatus.SUCCESS
        )

    def test_out_of_zone(self, zone):
        assert _lookup(zone, "elsewhere.org").status == LookupStatus.OUT_OF_ZONE


class TestWildcard:
    def test_wildcard_synthesis(self, zone):
        result = _lookup(zone, "anything.wild.example.com")
        assert result.status == LookupStatus.SUCCESS
        assert result.records[0].name == Name.from_text("anything.wild.example.com")
        assert result.records[0].rdata.to_text() == "192.0.2.77"

    def test_wildcard_multiple_levels(self, zone):
        # Closest-encloser wildcard also covers deeper names here.
        result = _lookup(zone, "x.wild.example.com")
        assert result.status == LookupStatus.SUCCESS

    def test_wildcard_nodata_for_other_type(self, zone):
        result = _lookup(zone, "x.wild.example.com", RRType.MX)
        assert result.status == LookupStatus.NODATA


class TestRemove:
    def test_remove_by_type(self, zone):
        removed = zone.remove("mail", RRType.A)
        assert removed == 2
        assert _lookup(zone, "mail.example.com").status == LookupStatus.NODATA

    def test_remove_all_types(self, zone):
        zone.add("mail", MX(10, "mx.example.com"))
        assert zone.remove("mail") == 3

    def test_contains(self, zone):
        assert "mail.example.com" in zone
        assert "nothere.example.com" not in zone
