"""Tests for the wire-format transport adapter."""

import ipaddress

import pytest

from repro.clock import SimulatedClock
from repro.dns import (
    A,
    AuthoritativeServer,
    CachingResolver,
    Name,
    SpfTestResponder,
    StubResolver,
    TXT,
    WireTransportBackend,
    Zone,
)
from repro.spf import SpfEvaluator, SpfResult


class TestWireTransport:
    def test_answers_identical_to_direct(self):
        zone = Zone("example.com")
        zone.add("mail", A("192.0.2.25"))
        zone.add("example.com", TXT("v=spf1 a:mail.example.com -all"))
        server = AuthoritativeServer([zone])
        wired = WireTransportBackend(server)

        from repro.dns import Message, RRType

        query = Message.make_query(Name.from_text("mail.example.com"), RRType.A)
        direct = server.query(query)
        over_wire = wired.query(query)
        assert [rr.rdata.to_text() for rr in over_wire.answers] == [
            rr.rdata.to_text() for rr in direct.answers
        ]
        assert over_wire.rcode == direct.rcode
        assert over_wire.authoritative == direct.authoritative

    def test_byte_accounting(self):
        zone = Zone("example.com")
        zone.add("mail", A("192.0.2.25"))
        wired = WireTransportBackend(AuthoritativeServer([zone]))
        from repro.dns import Message, RRType

        wired.query(Message.make_query(Name.from_text("mail.example.com"), RRType.A))
        assert wired.messages == 1
        assert wired.bytes_sent > 12  # at least a header
        assert wired.bytes_received > wired.bytes_sent  # answer adds data

    def test_spf_evaluation_identical_over_wire(self):
        """check_host() over wire transport matches the in-memory path —
        the substrate honesty check."""
        zone = Zone("example.com")
        zone.add("example.com", TXT("v=spf1 a:mail.example.com ip4:203.0.113.0/24 -all"))
        zone.add("mail", A("192.0.2.25"))
        server = AuthoritativeServer([zone])

        def outcome_via(backend):
            resolver = CachingResolver()
            resolver.register("example.com", backend)
            evaluator = SpfEvaluator(StubResolver(resolver))
            return [
                evaluator.check_host(
                    ipaddress.ip_address(ip), "example.com", "u@example.com"
                ).result
                for ip in ("192.0.2.25", "203.0.113.9", "8.8.8.8")
            ]

        assert outcome_via(server) == outcome_via(WireTransportBackend(server))
        assert outcome_via(server) == [SpfResult.PASS, SpfResult.PASS, SpfResult.FAIL]

    def test_measurement_detection_identical_over_wire(self):
        """The full detection path — macro fingerprint included — survives
        wire encoding byte-for-byte."""
        from repro.core import LabelAllocator, VulnerabilityDetector
        from repro.core.detector import DetectionOutcome
        from repro.smtp import Network, SmtpClient, SmtpServer, SpfStack, SpfTiming

        def detect(wrap):
            clock = SimulatedClock()
            responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
            backend = WireTransportBackend(responder) if wrap else responder
            resolver = CachingResolver(clock=lambda: clock.now)
            resolver.register("spf-test.dns-lab.org", backend)
            network = Network(clock=lambda: clock.now)
            network.register(
                SmtpServer(
                    "10.0.0.1",
                    spf_stacks=[SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM)],
                    resolver=StubResolver(resolver, identity="10.0.0.1", clock=lambda: clock.now),
                )
            )
            labels = LabelAllocator(Name.from_text("spf-test.dns-lab.org"))
            detector = VulnerabilityDetector(
                SmtpClient(network), responder, labels,
                wait=lambda s: clock.advance_seconds(s), now=lambda: clock.now,
            )
            result = detector.detect("10.0.0.1", labels.new_suite())
            return result.outcome, sorted(b.value for b in result.behaviors)

        assert detect(wrap=False) == detect(wrap=True)
        assert detect(wrap=True)[0] == DetectionOutcome.VULNERABLE
