"""Tests for authoritative servers and the measurement responder."""

import datetime as dt

import pytest

from repro.dns.message import Message, Rcode
from repro.dns.name import Name
from repro.dns.rdata import A, CNAME, RRType, TXT
from repro.dns.server import AuthoritativeServer, SpfTestResponder, default_policy_template
from repro.dns.zone import Zone

NOW = dt.datetime(2021, 10, 11, tzinfo=dt.timezone.utc)


def _ask(server, name, rrtype=RRType.A, source="tester"):
    return server.query(
        Message.make_query(Name.from_text(name), rrtype), source=source, now=NOW
    )


@pytest.fixture()
def auth():
    zone = Zone("example.com")
    zone.add("mail", A("192.0.2.25"))
    zone.add("www", CNAME("mail.example.com"))
    zone.add("alias", CNAME("external.other.org"))
    return AuthoritativeServer([zone])


class TestAuthoritativeServer:
    def test_positive_answer(self, auth):
        response = _ask(auth, "mail.example.com")
        assert response.rcode == Rcode.NOERROR
        assert response.authoritative
        assert response.answers[0].rdata.to_text() == "192.0.2.25"

    def test_nxdomain_with_soa(self, auth):
        response = _ask(auth, "none.example.com")
        assert response.rcode == Rcode.NXDOMAIN
        assert response.authority  # SOA for negative caching

    def test_nodata(self, auth):
        response = _ask(auth, "mail.example.com", RRType.TXT)
        assert response.rcode == Rcode.NOERROR
        assert not response.answers
        assert response.authority

    def test_refused_out_of_zone(self, auth):
        assert _ask(auth, "other.org").rcode == Rcode.REFUSED

    def test_cname_chased_in_zone(self, auth):
        response = _ask(auth, "www.example.com")
        rdata_types = [rr.rrtype for rr in response.answers]
        assert RRType.CNAME in rdata_types
        assert RRType.A in rdata_types

    def test_cname_to_external_returns_cname_only(self, auth):
        response = _ask(auth, "alias.example.com")
        assert [rr.rrtype for rr in response.answers] == [RRType.CNAME]

    def test_multiple_zones_longest_match(self):
        outer = Zone("example.com")
        inner = Zone("sub.example.com")
        inner.add("host", A("192.0.2.9"))
        server = AuthoritativeServer([outer, inner])
        response = _ask(server, "host.sub.example.com")
        assert response.answers


BASE = Name.from_text("spf-test.dns-lab.org")


@pytest.fixture()
def responder():
    return SpfTestResponder(BASE)


class TestSpfTestResponder:
    def test_policy_synthesized_with_labels(self, responder):
        response = _ask(responder, "ab12.suite1.spf-test.dns-lab.org", RRType.TXT)
        policy = response.answers[0].rdata.text
        assert policy == default_policy_template("ab12", "suite1", BASE)
        assert "%{d1r}.ab12.suite1.spf-test.dns-lab.org" in policy
        assert policy.endswith("-all")

    def test_a_answered_for_any_subname(self, responder):
        response = _ask(responder, "x.y.z.ab12.suite1.spf-test.dns-lab.org", RRType.A)
        assert response.answers[0].rdata.to_text() == responder.answer_address

    def test_aaaa_is_nodata_but_logged(self, responder):
        response = _ask(responder, "q.ab12.suite1.spf-test.dns-lab.org", RRType.AAAA)
        assert not response.answers
        assert any(e.rrtype == RRType.AAAA for e in responder.log)

    def test_no_txt_for_deep_names(self, responder):
        response = _ask(
            responder, "extra.ab12.suite1.spf-test.dns-lab.org", RRType.TXT
        )
        assert not response.answers

    def test_no_txt_for_shallow_names(self, responder):
        response = _ask(responder, "suite1.spf-test.dns-lab.org", RRType.TXT)
        assert not response.answers

    def test_out_of_base_refused_and_not_logged(self, responder):
        response = _ask(responder, "other.org", RRType.A)
        assert response.rcode == Rcode.REFUSED
        assert len(responder.log) == 0

    def test_every_query_logged_with_source(self, responder):
        _ask(responder, "p.ab12.suite1.spf-test.dns-lab.org", source="198.51.100.9")
        entry = list(responder.log)[-1]
        assert entry.source == "198.51.100.9"
        assert entry.timestamp == NOW

    def test_custom_policy_template(self):
        responder = SpfTestResponder(
            BASE, policy_template=lambda i, s, b: f"v=spf1 a:%{{l}}.{i}.{s}.{b} -all"
        )
        response = _ask(responder, "zz.s1.spf-test.dns-lab.org", RRType.TXT)
        assert "%{l}" in response.answers[0].rdata.text
