"""Tests for repro.dns.name."""

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import MAX_LABEL_LENGTH, Name
from repro.errors import NameError_

label_st = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1,
    max_size=8,
)
name_st = st.lists(label_st, min_size=0, max_size=8).map(Name)


class TestConstruction:
    def test_from_text_splits_labels(self):
        assert Name.from_text("mail.example.com").labels == ("mail", "example", "com")

    def test_trailing_dot_ignored(self):
        assert Name.from_text("example.com.") == Name.from_text("example.com")

    def test_root_from_dot(self):
        assert Name.from_text(".").is_root()

    def test_root_from_empty(self):
        assert Name.from_text("").is_root()

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a..b")

    def test_label_too_long_rejected(self):
        with pytest.raises(NameError_):
            Name(["x" * (MAX_LABEL_LENGTH + 1)])

    def test_label_at_limit_accepted(self):
        assert len(Name(["x" * MAX_LABEL_LENGTH]).labels[0]) == MAX_LABEL_LENGTH

    def test_name_too_long_rejected(self):
        with pytest.raises(NameError_):
            Name(["a" * 60] * 5)


class TestEquality:
    def test_case_insensitive_equality(self):
        assert Name.from_text("Mail.EXAMPLE.com") == Name.from_text("mail.example.COM")

    def test_case_preserved_in_presentation(self):
        assert str(Name.from_text("Mail.Example.COM")) == "Mail.Example.COM"

    def test_hash_case_insensitive(self):
        assert hash(Name.from_text("A.B")) == hash(Name.from_text("a.b"))

    def test_inequality(self):
        assert Name.from_text("a.com") != Name.from_text("b.com")

    def test_not_equal_to_string(self):
        assert Name.from_text("a.com") != "a.com"

    def test_canonical_ordering_by_rightmost_label(self):
        assert Name.from_text("z.aaa") < Name.from_text("a.bbb")


class TestStructure:
    def test_parent_strips_leftmost(self):
        assert Name.from_text("a.b.c").parent() == Name.from_text("b.c")

    def test_root_has_no_parent(self):
        with pytest.raises(NameError_):
            Name.root().parent()

    def test_tld(self):
        assert Name.from_text("a.b.ORG").tld() == "org"

    def test_root_tld_empty(self):
        assert Name.root().tld() == ""

    def test_subdomain_of_self(self):
        name = Name.from_text("example.com")
        assert name.is_subdomain_of(name)

    def test_subdomain_true(self):
        assert Name.from_text("a.example.com").is_subdomain_of(
            Name.from_text("example.com")
        )

    def test_subdomain_case_insensitive(self):
        assert Name.from_text("a.EXAMPLE.com").is_subdomain_of(
            Name.from_text("example.COM")
        )

    def test_subdomain_false_for_sibling(self):
        assert not Name.from_text("a.example.org").is_subdomain_of(
            Name.from_text("example.com")
        )

    def test_everything_is_subdomain_of_root(self):
        assert Name.from_text("a.b").is_subdomain_of(Name.root())

    def test_label_suffix_is_not_subdomain(self):
        # "ample.com" is a suffix string-wise but not label-wise.
        assert not Name.from_text("ample.com").is_subdomain_of(
            Name.from_text("example.com")
        )

    def test_relativize(self):
        relative = Name.from_text("x.y.example.com").relativize(
            Name.from_text("example.com")
        )
        assert relative == Name.from_text("x.y")

    def test_relativize_rejects_outsider(self):
        with pytest.raises(NameError_):
            Name.from_text("x.other.org").relativize(Name.from_text("example.com"))

    def test_concatenate(self):
        joined = Name.from_text("www").concatenate("example.com")
        assert joined == Name.from_text("www.example.com")

    def test_prepend(self):
        assert Name.from_text("example.com").prepend("mail") == Name.from_text(
            "mail.example.com"
        )


class TestSpfTransforms:
    def test_reversed_labels(self):
        assert Name.from_text("a.b.c").reversed_labels() == Name.from_text("c.b.a")

    def test_rightmost(self):
        assert Name.from_text("a.b.c").rightmost(2) == Name.from_text("b.c")

    def test_rightmost_more_than_length_is_identity(self):
        name = Name.from_text("a.b")
        assert name.rightmost(5) == name

    def test_rightmost_zero_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a.b").rightmost(0)


class TestProperties:
    @given(name_st)
    def test_text_roundtrip(self, name):
        assert Name.from_text(str(name)) == name

    @given(name_st)
    def test_double_reverse_is_identity(self, name):
        assert name.reversed_labels().reversed_labels() == name

    @given(name_st)
    def test_relativize_concatenate_roundtrip(self, name):
        if len(name) >= 1:
            origin = Name(name.labels[1:])
            assert name.relativize(origin).concatenate(origin) == name

    @given(name_st, label_st)
    def test_prepend_then_parent(self, name, label):
        assert name.prepend(label).parent() == name
