"""Tests for repro.dns.message."""

from repro.dns.message import Message, Opcode, Question, Rcode
from repro.dns.name import Name
from repro.dns.rdata import A, AAAA, RRType, ResourceRecord


def _query(name="example.com", rrtype=RRType.A, **kwargs):
    return Message.make_query(Name.from_text(name), rrtype, **kwargs)


class TestMakeQuery:
    def test_question_set(self):
        message = _query("foo.example.com", RRType.TXT)
        assert message.question == Question(
            Name.from_text("foo.example.com"), RRType.TXT
        )

    def test_defaults(self):
        message = _query()
        assert not message.is_response
        assert message.recursion_desired
        assert message.opcode == Opcode.QUERY
        assert message.rcode == Rcode.NOERROR

    def test_id_carried(self):
        assert _query(id=1234).id == 1234

    def test_iterative_query(self):
        assert not _query(recursion_desired=False).recursion_desired


class TestMakeResponse:
    def test_echoes_question_and_id(self):
        query = _query(id=7)
        response = query.make_response()
        assert response.id == 7
        assert response.question == query.question
        assert response.is_response

    def test_rcode_override(self):
        assert _query().make_response(Rcode.NXDOMAIN).rcode == Rcode.NXDOMAIN

    def test_sections_start_empty(self):
        response = _query().make_response()
        assert response.answers == []
        assert response.authority == []
        assert response.additional == []


class TestAnswerRrset:
    def test_filters_by_question_type(self):
        message = _query("a.com", RRType.A).make_response()
        message.answers = [
            ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1")),
            ResourceRecord(name=Name.from_text("a.com"), rdata=AAAA("2001:db8::1")),
        ]
        assert len(message.answer_rrset()) == 1
        assert message.answer_rrset()[0].rrtype == RRType.A

    def test_explicit_type(self):
        message = _query("a.com", RRType.A).make_response()
        message.answers = [
            ResourceRecord(name=Name.from_text("a.com"), rdata=AAAA("2001:db8::1"))
        ]
        assert len(message.answer_rrset(RRType.AAAA)) == 1


class TestToText:
    def test_contains_sections(self):
        message = _query("a.com").make_response()
        message.answers = [
            ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1"))
        ]
        text = message.to_text()
        assert "RESPONSE" in text
        assert "QUESTION" in text
        assert "192.0.2.1" in text

    def test_flags_rendered(self):
        message = _query().make_response()
        message.authoritative = True
        assert "aa" in message.to_text()
