"""Tests for master-file (zone file) parsing."""

import pytest

from repro.dns import Name, RRType
from repro.dns.zonefile import parse_zone_file
from repro.errors import DnsError

SAMPLE = """
$ORIGIN example.com.
$TTL 300
@        IN  SOA  ns1 hostmaster 7 3600 900 604800 60
@        IN  MX   10 mail
@        IN  MX   20 backup.other.org.
@        IN  TXT  "v=spf1 a:mail.example.com " "-all"
mail 600 IN  A    192.0.2.25
         IN  A    192.0.2.26
mail     IN  AAAA 2001:db8::25
www      IN  CNAME mail        ; web alias
ns1      IN  A    192.0.2.53
"""


@pytest.fixture()
def zone():
    return parse_zone_file(SAMPLE)


class TestParsing:
    def test_origin_from_directive(self, zone):
        assert zone.origin == Name.from_text("example.com")

    def test_at_sign_is_origin(self, zone):
        assert zone.rrset("example.com", RRType.MX)

    def test_relative_names_join_origin(self, zone):
        assert zone.rrset("mail.example.com", RRType.A)

    def test_absolute_names_kept(self, zone):
        exchanges = zone.rrset("example.com", RRType.MX)
        targets = {rr.rdata.exchange for rr in exchanges}
        assert Name.from_text("backup.other.org") in targets
        assert Name.from_text("mail.example.com") in targets

    def test_blank_owner_continuation(self, zone):
        addresses = {rr.rdata.to_text() for rr in zone.rrset("mail", RRType.A)}
        assert addresses == {"192.0.2.25", "192.0.2.26"}

    def test_explicit_ttl(self, zone):
        assert zone.rrset("mail", RRType.A)[0].ttl == 600

    def test_default_ttl(self, zone):
        assert zone.rrset("ns1", RRType.A)[0].ttl == 300

    def test_multi_string_txt_concatenated(self, zone):
        assert zone.rrset("example.com", RRType.TXT)[0].rdata.text == (
            "v=spf1 a:mail.example.com -all"
        )

    def test_comments_stripped(self, zone):
        assert zone.rrset("www", RRType.CNAME)

    def test_soa_replaces_synthetic(self, zone):
        assert zone.soa.rdata.serial == 7
        assert zone.soa.rdata.minimum == 60

    def test_aaaa(self, zone):
        assert zone.rrset("mail", RRType.AAAA)[0].rdata.to_text() == "2001:db8::25"


class TestErrors:
    def test_no_origin(self):
        with pytest.raises(DnsError):
            parse_zone_file("@ IN A 192.0.2.1")

    def test_origin_parameter_fallback(self):
        zone = parse_zone_file("@ IN A 192.0.2.1", origin="fallback.test")
        assert zone.rrset("fallback.test", RRType.A)

    def test_empty_file(self):
        with pytest.raises(DnsError):
            parse_zone_file("; nothing here\n")

    def test_continuation_without_owner(self):
        with pytest.raises(DnsError):
            parse_zone_file("$ORIGIN x.test.\n    IN A 192.0.2.1")

    def test_missing_type(self):
        with pytest.raises(DnsError):
            parse_zone_file("$ORIGIN x.test.\nhost IN")

    def test_unknown_type(self):
        with pytest.raises(DnsError):
            parse_zone_file("$ORIGIN x.test.\nhost IN SRV 0 0 25 mail")

    def test_bad_mx(self):
        with pytest.raises(DnsError):
            parse_zone_file("$ORIGIN x.test.\n@ IN MX mail")


class TestServingParsedZone:
    def test_parsed_zone_answers_queries(self, zone):
        from repro.dns import AuthoritativeServer, Message

        server = AuthoritativeServer([zone])
        response = server.query(
            Message.make_query(Name.from_text("mail.example.com"), RRType.A)
        )
        assert len(response.answers) == 2

    def test_spf_policy_from_zone_file_evaluates(self, zone):
        import ipaddress

        from repro.dns import AuthoritativeServer, CachingResolver, StubResolver
        from repro.spf import SpfEvaluator, SpfResult

        resolver = CachingResolver()
        resolver.register("example.com", AuthoritativeServer([zone]))
        evaluator = SpfEvaluator(StubResolver(resolver))
        outcome = evaluator.check_host(
            ipaddress.ip_address("192.0.2.25"), "example.com", "u@example.com"
        )
        assert outcome.result == SpfResult.PASS
