"""Tests for repro.dns.rdata."""

import ipaddress

import pytest
from hypothesis import given, strategies as st

from repro.dns.name import Name
from repro.dns.rdata import (
    A,
    AAAA,
    CNAME,
    MX,
    NS,
    PTR,
    RRType,
    ResourceRecord,
    SOA,
    TXT,
    rdata_class_for,
)
from repro.errors import WireFormatError


class TestA:
    def test_text(self):
        assert A("192.0.2.1").to_text() == "192.0.2.1"

    def test_wire_roundtrip(self):
        rdata = A("198.51.100.200")
        assert A.from_wire(rdata.to_wire()) == rdata

    def test_wire_is_packed_address(self):
        assert A("1.2.3.4").to_wire() == bytes([1, 2, 3, 4])

    def test_bad_wire_length(self):
        with pytest.raises(WireFormatError):
            A.from_wire(b"\x01\x02\x03")

    def test_accepts_ipaddress_object(self):
        assert A(ipaddress.IPv4Address("10.0.0.1")).to_text() == "10.0.0.1"

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip_any_address(self, value):
        rdata = A(ipaddress.IPv4Address(value))
        assert A.from_wire(rdata.to_wire()) == rdata


class TestAAAA:
    def test_wire_roundtrip(self):
        rdata = AAAA("2001:db8::1")
        assert AAAA.from_wire(rdata.to_wire()) == rdata

    def test_wire_length(self):
        assert len(AAAA("::1").to_wire()) == 16

    def test_bad_wire_length(self):
        with pytest.raises(WireFormatError):
            AAAA.from_wire(b"\x00" * 4)


class TestTXT:
    def test_single_string(self):
        assert TXT("v=spf1 -all").text == "v=spf1 -all"

    def test_presentation_quotes(self):
        assert TXT("hello").to_text() == '"hello"'

    def test_long_string_split_at_255(self):
        rdata = TXT("x" * 600)
        assert [len(s) for s in rdata.strings] == [255, 255, 90]
        assert rdata.text == "x" * 600

    def test_multiple_strings_concatenated(self):
        assert TXT(["v=spf1 ", "-all"]).text == "v=spf1 -all"

    def test_wire_roundtrip(self):
        rdata = TXT(["abc", "def"])
        assert TXT.from_wire(rdata.to_wire()) == rdata

    def test_wire_has_length_prefixes(self):
        assert TXT("ab").to_wire() == b"\x02ab"

    def test_from_wire_truncated_string(self):
        with pytest.raises(WireFormatError):
            TXT.from_wire(b"\x05ab")

    @given(st.lists(st.binary(min_size=0, max_size=255), min_size=1, max_size=4))
    def test_wire_roundtrip_property(self, strings):
        rdata = TXT(list(strings))
        assert TXT.from_wire(rdata.to_wire()).strings == rdata.strings


class TestMX:
    def test_fields(self):
        rdata = MX(10, "mail.example.com")
        assert rdata.preference == 10
        assert rdata.exchange == Name.from_text("mail.example.com")

    def test_wire_roundtrip(self):
        rdata = MX(20, "mx2.example.org")
        decoded = MX.from_wire(rdata.to_wire())
        assert (decoded.preference, decoded.exchange) == (20, rdata.exchange)

    def test_preference_out_of_range(self):
        with pytest.raises(WireFormatError):
            MX(70000, "mail.example.com")

    def test_text(self):
        assert MX(5, "m.example.com").to_text() == "5 m.example.com."


class TestNameRdatas:
    @pytest.mark.parametrize("cls", [NS, CNAME, PTR])
    def test_wire_roundtrip(self, cls):
        rdata = cls("target.example.net")
        assert cls.from_wire(rdata.to_wire()).target == rdata.target

    def test_cname_text(self):
        assert CNAME("www.example.com").to_text() == "www.example.com."


class TestSOA:
    def test_wire_roundtrip(self):
        rdata = SOA("ns1.example.com", "hostmaster.example.com", serial=42)
        decoded = SOA.from_wire(rdata.to_wire())
        assert decoded.mname == rdata.mname
        assert decoded.rname == rdata.rname
        assert decoded.serial == 42

    def test_defaults(self):
        rdata = SOA("ns1.x", "root.x")
        assert rdata.minimum == 300


class TestRegistry:
    @pytest.mark.parametrize(
        "rrtype,cls",
        [
            (RRType.A, A),
            (RRType.AAAA, AAAA),
            (RRType.TXT, TXT),
            (RRType.MX, MX),
            (RRType.NS, NS),
            (RRType.CNAME, CNAME),
            (RRType.PTR, PTR),
            (RRType.SOA, SOA),
        ],
    )
    def test_class_lookup(self, rrtype, cls):
        assert rdata_class_for(rrtype) is cls

    def test_unknown_type_rejected(self):
        with pytest.raises(WireFormatError):
            rdata_class_for(RRType.ANY)


class TestResourceRecord:
    def test_rrtype_delegates_to_rdata(self):
        rr = ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1"))
        assert rr.rrtype == RRType.A

    def test_to_text(self):
        rr = ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1"), ttl=60)
        assert rr.to_text() == "a.com. 60 IN A 192.0.2.1"

    def test_equality_by_value(self):
        a = ResourceRecord(name=Name.from_text("a.com"), rdata=A("192.0.2.1"))
        b = ResourceRecord(name=Name.from_text("A.COM"), rdata=A("192.0.2.1"))
        assert a == b
