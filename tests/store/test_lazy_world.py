"""Lazy and eager world construction must be observationally identical.

The lazy world (PR 6) materializes servers on first touch; ``--world
eager`` pre-builds every addressable server from the same per-unit RNG
forks.  The contract: traces and exported CSVs are byte-identical
between the two modes, for the serial *and* the process-sharded
executor, and an interrupted lazy run resumed from its checkpoint store
still lands on the eager reference bytes — proving that snapshot
restore, first-touch regeneration, and eager construction all describe
the same world.
"""

from __future__ import annotations

import os
from types import SimpleNamespace

import pytest

from repro.analysis.export import export_all
from repro.api import RunConfig
from repro.errors import CampaignAborted
from repro.obs import Observation
from repro.simulation import Simulation
from repro.store import RunStore

SCALE = 0.02
SEED = 20211011


def _csv_bytes(directory):
    return {
        name: (directory / name).read_bytes()
        for name in sorted(os.listdir(directory))
    }


def _artifacts(sim, obs, root):
    trace = root / "trace.jsonl"
    obs.tracer.write_jsonl(str(trace))
    csv_dir = root / "csv"
    export_all(sim, str(csv_dir))
    return trace.read_bytes(), _csv_bytes(csv_dir)


def _run(config, root):
    obs = Observation(trace=True)
    sim = Simulation.build(config=config, observation=obs)
    sim.run()
    trace, csv = _artifacts(sim, obs, root)
    return SimpleNamespace(sim=sim, trace=trace, csv=csv)


@pytest.fixture(scope="module")
def eager_reference(tmp_path_factory):
    """The eager serial run both lazy modes must reproduce exactly."""
    root = tmp_path_factory.mktemp("eager")
    config = RunConfig(
        scale=SCALE, seed=SEED, executor="serial", trace=True, world="eager"
    )
    return _run(config, root)


def test_eager_mode_materializes_everything_up_front(eager_reference):
    network = eager_reference.sim.campaign.network
    assert network.materialized_count == len(network)


def test_serial_lazy_matches_eager_bytes(eager_reference, tmp_path):
    config = RunConfig(scale=SCALE, seed=SEED, executor="serial", trace=True)
    assert config.world == "lazy"
    lazy = _run(config, tmp_path)
    assert lazy.trace == eager_reference.trace
    assert lazy.csv == eager_reference.csv
    # Laziness is real, not a relabeled eager build: the run touched
    # only what it probed, which is strictly less than the addressable
    # space the eager network pre-built.
    assert (
        lazy.sim.campaign.network.materialized_count
        < eager_reference.sim.campaign.network.materialized_count
    )


def test_process_lazy_matches_eager_bytes(eager_reference, tmp_path):
    config = RunConfig(
        scale=SCALE, seed=SEED, executor="process", workers=2, trace=True
    )
    lazy = _run(config, tmp_path)
    assert lazy.trace == eager_reference.trace
    assert lazy.csv == eager_reference.csv


def test_interrupted_lazy_run_resumes_to_eager_bytes(eager_reference, tmp_path):
    """Kill a lazy run after round 2; the resumed world — rebuilt lazily
    and patched up from the snapshot of *touched* servers — must still
    finish byte-identical to the eager reference."""
    config = RunConfig(scale=SCALE, seed=SEED, executor="serial", trace=True)
    store = RunStore(str(tmp_path / "store"))
    store.abort_after_round = 2
    sim = Simulation.build(config=config, observation=Observation(trace=True))
    with pytest.raises(CampaignAborted):
        sim.run(store=store)

    store.abort_after_round = None
    obs = Observation(trace=True)
    resumed = Simulation.resume(store, observation=obs)
    resumed.run(store=store)
    trace, csv = _artifacts(resumed, obs, tmp_path)
    assert trace == eager_reference.trace
    assert csv == eager_reference.csv
