"""Tests for the persistent RunStore and deterministic resume."""
