"""Single-writer locking on the run store.

A serve daemon holds a run's lock for its whole lifetime; a batch
``run``/``resume`` acquires it for the duration of the write. Either
way the invariant is the same: two writers must never append to one
checkpoint chain concurrently, and the loser gets a clear
:class:`StoreError` instead of a corrupted manifest.

The lock is ``fcntl.flock(LOCK_EX | LOCK_NB)`` on a lock file *beside*
the run directory (``run-<hash8>.lock``), not inside it — a fresh run
re-creating the directory must not unlink the very inode another
process holds locked.  flock is per open-file-description, so two
opens in one process conflict exactly like two processes do, which is
what these tests exercise.
"""

from __future__ import annotations

import os

import pytest

from repro.api import RunConfig
from repro.errors import StoreError
from repro.simulation import Simulation
from repro.store import RunStore, StoreLock

SCALE = 0.002
SEED = 5


@pytest.fixture()
def store(tmp_path):
    return RunStore(str(tmp_path / "runs"))


@pytest.fixture()
def config():
    return RunConfig(scale=SCALE, seed=SEED)


class TestStoreLock:
    def test_acquire_release_cycle(self, tmp_path):
        path = str(tmp_path / "x.lock")
        lock = StoreLock(path).acquire()
        assert lock.held
        lock.release()
        assert not lock.held
        # Released means a second acquisition succeeds.
        again = StoreLock(path).acquire()
        assert again.held
        again.release()

    def test_second_acquirer_refused_while_held(self, tmp_path):
        path = str(tmp_path / "x.lock")
        lock = StoreLock(path).acquire()
        try:
            with pytest.raises(StoreError, match="locked by another writer"):
                StoreLock(path).acquire()
        finally:
            lock.release()

    def test_release_is_idempotent(self, tmp_path):
        lock = StoreLock(str(tmp_path / "x.lock")).acquire()
        lock.release()
        lock.release()
        assert not lock.held

    def test_context_manager_releases(self, tmp_path):
        path = str(tmp_path / "x.lock")
        with StoreLock(path).acquire():
            with pytest.raises(StoreError):
                StoreLock(path).acquire()
        StoreLock(path).acquire().release()


class TestTwoWriters:
    def test_two_writers_on_one_run_refused(self, store, config):
        """The regression test from the issue: writer vs writer."""
        sim_a = Simulation.build(config=config)
        sim_b = Simulation.build(config=config)
        writer = store.writer(sim_a)
        try:
            with pytest.raises(StoreError, match="locked by another writer"):
                store.writer(sim_b)
        finally:
            writer.close()
        # The first writer's close released the lock: a new writer (the
        # "resume after the crash" path) succeeds.
        writer2 = store.writer(sim_b)
        writer2.close()

    def test_daemon_style_lock_blocks_batch_writer(self, store, config):
        """acquire_lock (the serve daemon's spelling) vs store.writer."""
        lock = store.acquire_lock(config)
        sim = Simulation.build(config=config)
        try:
            with pytest.raises(StoreError, match="locked by another writer"):
                store.writer(sim)
        finally:
            lock.release()
        writer = store.writer(sim)
        writer.close()

    def test_lock_lives_beside_run_dir(self, store, config):
        """Fresh-run directory reset must not unlink the locked inode."""
        lock_path = store.lock_path(config)
        run_dir = os.path.splitext(lock_path)[0]
        assert not lock_path.startswith(run_dir + os.sep)

    def test_writer_failure_releases_lock(self, store, config, monkeypatch):
        """A writer that dies during setup must not leak the lock."""
        sim = Simulation.build(config=config)
        monkeypatch.setattr(
            store, "_write_config", lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("disk on fire")
            ), raising=False,
        )
        # Whether or not that internal exists, a successful writer must
        # release on close and allow the next acquisition.
        writer = store.writer(sim)
        writer.close()
        lock = store.acquire_lock(config)
        lock.release()

    def test_run_through_store_releases_lock_at_end(self, store, config):
        """sim.run(store=...) closes its writer (and lock) in finally."""
        sim = Simulation.build(config=config)
        sim.run(store=store)
        lock = store.acquire_lock(config)
        assert lock.held
        lock.release()
