"""Unit tests for the RunConfig value and the on-disk RunStore.

Checkpoint chains, manifests, digests, atomic writes, and the
hash-keyed store layout — everything below the full resume tests in
:mod:`tests.store.test_resume`.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from types import SimpleNamespace

import pytest

from repro.api import RunConfig
from repro.core.campaign import CampaignConfig
from repro.errors import SimulationError
from repro.exec.shardworld import WorldSpec
from repro.internet.population import PopulationConfig
from repro.simulation import Simulation
from repro.store import CampaignAborted, RunStore, StoreError
from repro.store.runstore import _atomic_write

SCALE = 0.002
SEED = 5


class TestRunConfig:
    def test_json_round_trip(self):
        config = RunConfig(
            scale=0.004, seed=7, executor="sharded", workers=3, trace=True
        )
        clone = RunConfig.from_json(config.to_json())
        assert clone == config
        assert clone.content_hash() == config.content_hash()

    def test_round_trip_with_explicit_subconfigs(self):
        config = RunConfig(
            scale=0.004,
            seed=7,
            population=PopulationConfig(scale=0.004, seed=7),
            campaign=CampaignConfig(),
        )
        clone = RunConfig.from_json(config.to_json())
        assert clone == config

    def test_runtime_fields_do_not_change_the_hash(self):
        base = RunConfig(scale=0.004, seed=7)
        for runtime in (
            RunConfig(scale=0.004, seed=7, executor="process", workers=8),
            RunConfig(scale=0.004, seed=7, executor="serial", trace=True),
        ):
            assert runtime.content_hash() == base.content_hash()

    def test_semantic_fields_change_the_hash(self):
        base = RunConfig(scale=0.004, seed=7)
        assert RunConfig(scale=0.005, seed=7).content_hash() != base.content_hash()
        assert RunConfig(scale=0.004, seed=8).content_hash() != base.content_hash()

    def test_explicit_population_hashes_like_the_derived_default(self):
        base = RunConfig(scale=0.004, seed=7)
        explicit = RunConfig(
            scale=0.004, seed=7, population=PopulationConfig(scale=0.004, seed=7)
        )
        assert explicit.content_hash() == base.content_hash()

    def test_unknown_executor_rejected(self):
        with pytest.raises(SimulationError, match="executor"):
            RunConfig(executor="quantum")


class TestWorldSpecShim:
    def test_returns_runconfig_and_warns(self):
        population = PopulationConfig(scale=0.004, seed=SEED)
        campaign = CampaignConfig()
        with pytest.warns(DeprecationWarning, match="WorldSpec is deprecated"):
            spec = WorldSpec(population, campaign, SEED)
        assert isinstance(spec, RunConfig)
        assert spec.population == population
        assert spec.campaign == campaign
        assert spec.seed == SEED
        assert spec.scale == population.scale


@pytest.fixture(scope="module")
def aborted(tmp_path_factory):
    """A run checkpointed into a store and aborted after round 1."""
    root = tmp_path_factory.mktemp("store")
    config = RunConfig(scale=SCALE, seed=SEED, executor="serial")
    store = RunStore(str(root))
    store.abort_after_round = 1
    sim = Simulation.build(config=config)
    with pytest.raises(CampaignAborted):
        sim.run(store=store)
    store.abort_after_round = None
    return SimpleNamespace(store=store, config=config, root=root)


def _copy_store(aborted, tmp_path):
    copy = tmp_path / "store"
    shutil.copytree(aborted.root, copy)
    return RunStore(str(copy)), copy


class TestStoreLayout:
    def test_run_directory_keyed_by_config_hash(self, aborted):
        run_id = f"run-{aborted.config.content_hash()[:8]}"
        assert aborted.store.runs() == [run_id]
        run_dir = aborted.root / run_id
        assert (run_dir / "config.json").is_file()
        stored = RunConfig.from_json((run_dir / "config.json").read_text())
        assert stored == aborted.config

    def test_manifest_indexes_the_chain_with_digests(self, aborted):
        run_dir = aborted.root / aborted.store.runs()[0]
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["config_hash"] == aborted.config.content_hash()
        entries = manifest["checkpoints"]
        assert [e["kind"] for e in entries] == ["initial", "round"]
        assert [e["rounds_completed"] for e in entries] == [0, 1]
        for entry in entries:
            data = (run_dir / entry["file"]).read_bytes()
            assert len(data) == entry["size"]
            assert hashlib.sha256(data).hexdigest() == entry["sha256"]

    def test_no_temp_files_left_behind(self, aborted):
        run_dir = aborted.root / aborted.store.runs()[0]
        assert not [n for n in os.listdir(run_dir) if n.endswith(".tmp")]

    def test_load_latest_empty_store(self, tmp_path):
        with pytest.raises(StoreError, match="no checkpointed runs"):
            RunStore(str(tmp_path / "empty")).load_latest()

    def test_load_latest_hash_mismatch_lists_candidates(self, aborted):
        other = RunConfig(scale=0.003, seed=6)
        with pytest.raises(StoreError, match=r"no stored run matches.*holds: run-"):
            aborted.store.load_latest(config_hash=other.content_hash())

    def test_load_latest_matching_hash(self, aborted):
        state = aborted.store.load_latest(
            config_hash=aborted.config.content_hash()
        )
        assert state.checkpoint.kind == "round"
        assert len(state.checkpoint.rounds) == 1
        assert state.config == aborted.config

    def test_missing_checkpoint_file_truncates_the_chain(self, aborted, tmp_path):
        store, copy = _copy_store(aborted, tmp_path)
        run_id = store.runs()[0]
        os.remove(copy / run_id / "checkpoint-0001.pkl")
        state = store.load_latest()
        assert state.checkpoint.kind == "initial"
        assert len(state.entries) == 1

    def test_all_checkpoints_torn_is_an_error(self, aborted, tmp_path):
        store, copy = _copy_store(aborted, tmp_path)
        run_id = store.runs()[0]
        for name in ("checkpoint-0000.pkl", "checkpoint-0001.pkl"):
            (copy / run_id / name).write_bytes(b"torn")
        with pytest.raises(StoreError, match="no usable checkpoint"):
            store.load_latest()


class TestAtomicWrite:
    def test_replaces_content_and_leaves_no_temp(self, tmp_path):
        target = tmp_path / "file.bin"
        _atomic_write(str(target), b"one")
        _atomic_write(str(target), b"two")
        assert target.read_bytes() == b"two"
        assert os.listdir(tmp_path) == ["file.bin"]


class TestWriter:
    def test_requires_config_built_simulation(self, tmp_path):
        store = RunStore(str(tmp_path / "s"))
        sim = Simulation.build(config=RunConfig(scale=SCALE, seed=SEED))
        sim.config = None
        with pytest.raises(StoreError, match="RunConfig"):
            store.writer(sim)

    def test_fresh_run_replaces_a_previous_attempt(self, aborted, tmp_path):
        store, _ = _copy_store(aborted, tmp_path)
        sim = Simulation.build(config=aborted.config)
        sim.run(store=store)
        state = store.load_latest()
        assert state.checkpoint.kind == "round"
        assert len(state.checkpoint.rounds) == len(sim.result.rounds)
        # initial + one entry per round, freshly renumbered from zero
        assert len(state.entries) == len(sim.result.rounds) + 1
