"""Interrupted campaigns must resume to byte-identical artifacts.

The checkpoint/resume contract (see :mod:`repro.store`) is that a run
killed after round *k* and resumed from its store finishes with the
same canonical trace and the same exported CSVs, down to the byte, as a
run that was never interrupted.  This module fault-injects the two
interruption modes the paper's four-month measurement would actually
face — an exception raised mid-timeline, and a SIGKILLed worker process
between rounds — at scale 0.02 for both the serial and the
process-sharded executor, plus a torn-checkpoint crash that must fall
back to the previous complete checkpoint.
"""

from __future__ import annotations

import os
import signal
from types import SimpleNamespace

import pytest

from repro.analysis.export import export_all
from repro.api import RunConfig
from repro.errors import CampaignAborted
from repro.obs import Observation, observing
from repro.simulation import Simulation
from repro.store import RunStore

from ..exec.test_determinism import canonicalize

SCALE = 0.02
SEED = 20211011
ABORT_AFTER = 2


def _csv_bytes(directory):
    return {
        name: (directory / name).read_bytes()
        for name in sorted(os.listdir(directory))
    }


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    """The uninterrupted serial run every resumed run must reproduce."""
    root = tmp_path_factory.mktemp("reference")
    obs = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(scale=SCALE, seed=SEED, executor="serial", trace=True),
        observation=obs,
    )
    sim.run()
    trace = root / "trace.jsonl"
    obs.tracer.write_jsonl(str(trace))
    csv_dir = root / "csv"
    export_all(sim, str(csv_dir))
    return SimpleNamespace(
        sim=sim,
        trace_bytes=trace.read_bytes(),
        csv=_csv_bytes(csv_dir),
    )


def _assert_matches_reference(resumed, obs, reference, tmp_path):
    trace = tmp_path / "resumed.jsonl"
    obs.tracer.write_jsonl(str(trace))
    assert trace.read_bytes() == reference.trace_bytes
    csv_dir = tmp_path / "csv"
    export_all(resumed, str(csv_dir))
    assert _csv_bytes(csv_dir) == reference.csv


def test_serial_exception_mid_timeline_resumes_byte_identical(
    reference, tmp_path
):
    """Kill a serial run with an exception after round k; resume it."""
    store = RunStore(str(tmp_path / "store"))
    store.abort_after_round = ABORT_AFTER
    obs = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(scale=SCALE, seed=SEED, executor="serial", trace=True),
        observation=obs,
    )
    with pytest.raises(CampaignAborted):
        sim.run(store=store)

    store.abort_after_round = None
    obs2 = Observation(trace=True)
    resumed = Simulation.resume(store, observation=obs2)
    assert resumed.provenance.rounds_completed == ABORT_AFTER
    assert resumed.provenance.checkpoint_kind == "round"
    resumed.run(store=store)

    _assert_matches_reference(resumed, obs2, reference, tmp_path)


def test_process_worker_sigkill_between_rounds_resumes_byte_identical(
    reference, tmp_path
):
    """SIGKILL a process-executor worker between rounds; resume the run.

    The resumed campaign spawns fresh worker pools mid-timeline (rebuilt
    from the checkpointed config plus the replayed event history) and
    must still land on the *serial* reference bytes — proving both crash
    recovery and cross-strategy identity at once.
    """
    config = RunConfig(
        scale=SCALE, seed=SEED, executor="process", workers=2, trace=True
    )
    store = RunStore(str(tmp_path / "store"))
    store.abort_after_round = ABORT_AFTER
    obs = Observation(trace=True)
    sim = Simulation.build(config=config, observation=obs)
    executor = sim.campaign.executor
    writer = store.writer(sim)
    try:
        with observing(obs):
            with pytest.raises(CampaignAborted):
                sim.campaign.run(store=writer)
        # Round k's checkpoint is on disk and the worker pools are still
        # alive: SIGKILL one worker between rounds, as a crashing host
        # would, then abandon the whole run.
        pids = [
            process.pid
            for pool in executor._pools.values()
            for process in pool._processes.values()
        ]
        assert pids, "process executor finished rounds without worker pools"
        os.kill(pids[0], signal.SIGKILL)
    finally:
        executor.shutdown()
        # Release the single-writer lock the abandoned run holds, as a
        # crashed process's OS-level cleanup would.
        writer.close()

    store.abort_after_round = None
    obs2 = Observation(trace=True)
    resumed = Simulation.resume(store, observation=obs2)
    assert resumed.provenance.rounds_completed == ABORT_AFTER
    result = resumed.run(store=store)

    _assert_matches_reference(resumed, obs2, reference, tmp_path)
    assert repr(canonicalize(result)).encode() == repr(
        canonicalize(reference.sim.result)
    ).encode()


def test_torn_newest_checkpoint_falls_back_to_previous(tmp_path):
    """A kill mid-write leaves a torn newest file; load must degrade.

    The manifest still references the torn checkpoint, but its digest no
    longer matches, so the chain ends one entry earlier — and resuming
    from there still reproduces the uninterrupted campaign exactly.
    """
    config = RunConfig(scale=0.005, seed=SEED, executor="serial")
    store = RunStore(str(tmp_path / "store"))
    store.abort_after_round = 2
    sim = Simulation.build(config=config)
    with pytest.raises(CampaignAborted):
        sim.run(store=store)

    run_dir = tmp_path / "store" / f"run-{config.content_hash()[:8]}"
    newest = run_dir / "checkpoint-0002.pkl"
    data = newest.read_bytes()
    newest.write_bytes(data[: len(data) // 2])

    state = store.load_latest()
    assert state.checkpoint.kind == "round"
    assert len(state.checkpoint.rounds) == 1
    assert len(state.entries) == 2  # initial + round 1 survived

    store.abort_after_round = None
    resumed = Simulation.resume(state)
    result = resumed.run()

    ref = Simulation.build(config=config).run()
    assert repr(canonicalize(result)).encode() == repr(canonicalize(ref)).encode()
