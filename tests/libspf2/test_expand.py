"""Tests for the ported spf_expand with both CVEs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MacroError
from repro.libspf2.expand import LibSpf2Expander


def values(domain="example.com", local="user"):
    table = {
        "d": domain,
        "l": local,
        "o": domain,
        "s": f"{local}@{domain}",
        "i": "192.0.2.3",
        "h": "helo.example",
        "p": "unknown",
        "v": "in-addr",
        "c": "192.0.2.3",
        "r": "receiver",
        "t": "0",
    }
    return lambda letter: table[letter]


VULN = LibSpf2Expander(patched=False)
FIXED = LibSpf2Expander(patched=True)


class TestFingerprint:
    def test_paper_example(self):
        """Section 4.2: a:%d1r.foo.com for user@example.com."""
        outcome = VULN.expand("%{d1r}.foo.com", values("example.com"))
        assert outcome.output == "com.com.example.foo.com"
        assert outcome.memory_safe  # wrong, but benign: the detectable case

    def test_patched_is_rfc_compliant(self):
        outcome = FIXED.expand("%{d1r}.foo.com", values("example.com"))
        assert outcome.output == "example.foo.com"

    def test_measurement_policy_expansion(self):
        domain = "ab1.s1.spf-test.dns-lab.org"
        outcome = VULN.expand("%{d1r}." + domain, values(domain))
        assert outcome.output == (
            "org.org.dns-lab.spf-test.s1.ab1." + domain
        )
        assert outcome.memory_safe

    def test_reversal_without_truncation_also_buggy(self):
        outcome = VULN.expand("%{dr}", values("a.b.c"))
        assert outcome.output == "c.c.b.a"

    def test_non_reversed_macros_expand_correctly(self):
        assert VULN.expand("%{d2}", values("a.b.c")).output == "b.c"
        assert VULN.expand("%{l}", values()).output == "user"

    def test_literals_untouched(self):
        assert VULN.expand("plain.text", values()).output == "plain.text"

    def test_escapes(self):
        assert VULN.expand("a%_b%-c%%", values()).output == "a b%20c%"


class TestCve33912:
    """URL-encoding sprintf overflow."""

    def test_high_byte_corrupts(self):
        outcome = VULN.expand("%{L}", values(local="café"))
        assert not outcome.memory_safe
        assert outcome.overflow_byte_count > 0

    def test_multiple_high_bytes_crash(self):
        outcome = VULN.expand("%{L}", values(local="çéü"))
        assert outcome.crashed

    def test_ascii_url_encoding_is_safe(self):
        outcome = VULN.expand("%{S}", values())  # '@' escapes to %40
        assert outcome.memory_safe
        assert "%40" in outcome.output.lower()

    def test_patched_encodes_high_bytes_safely(self):
        outcome = FIXED.expand("%{L}", values(local="café"))
        assert outcome.memory_safe
        assert outcome.output == "caf%C3%A9"

    def test_unsigned_char_platform_not_affected(self):
        expander = LibSpf2Expander(patched=False, char_is_signed=False)
        outcome = expander.expand("%{L}", values(local="café"))
        assert outcome.memory_safe


class TestCve33913:
    """Buffer-length reassignment on reversal + URL encoding."""

    def test_reverse_plus_url_encode_overflows(self):
        outcome = VULN.expand("%{D1R}", values("a.b.c.d.e.f.g.h"))
        assert not outcome.memory_safe

    def test_overflow_is_attacker_sized(self):
        long_domain = ".".join(f"part{i}" for i in range(10))
        outcome = VULN.expand("%{D1R}", values(long_domain))
        assert outcome.crashed

    def test_patched_handles_reverse_url(self):
        outcome = FIXED.expand("%{D1R}", values("a.b.c.d.e.f.g.h"))
        assert outcome.memory_safe
        assert outcome.output == "a"

    def test_reverse_without_url_is_the_benign_fingerprint(self):
        outcome = VULN.expand("%{d1r}", values("a.b.c.d.e.f.g.h"))
        assert outcome.memory_safe


class TestSyntax:
    def test_bad_macro_rejected(self):
        with pytest.raises(MacroError):
            VULN.expand("%{q}", values())

    def test_unterminated_rejected(self):
        with pytest.raises(MacroError):
            VULN.expand("%{d1r", values())

    def test_trailing_percent_rejected(self):
        with pytest.raises(MacroError):
            VULN.expand("abc%", values())


domain_st = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=5), min_size=1, max_size=6
).map(".".join)


class TestProperties:
    @given(domain_st)
    def test_vulnerable_reversal_never_corrupts_without_url(self, domain):
        outcome = VULN.expand("%{d1r}.tail.example", values(domain))
        assert outcome.memory_safe

    @given(domain_st, st.sampled_from(["%{d}", "%{d1}", "%{d2}", "%{dr}", "%{d1r}"]))
    def test_patched_never_corrupts(self, domain, macro):
        outcome = FIXED.expand(macro, values(domain))
        assert outcome.memory_safe

    @given(domain_st)
    def test_fingerprint_always_has_duplicated_head(self, domain):
        outcome = VULN.expand("%{d1r}", values(domain))
        labels = outcome.output.split(".")
        assert labels[0] == labels[1] == domain.split(".")[-1]
        assert len(labels) == len(domain.split(".")) + 1
