"""Tests for the CVE proof-of-concept triggers."""

import pytest

from repro.libspf2.poc import (
    fingerprint_for,
    trigger_cve_2021_33912,
    trigger_cve_2021_33913,
)


class TestPocs:
    @pytest.mark.parametrize(
        "trigger,cve",
        [
            (trigger_cve_2021_33912, "CVE-2021-33912"),
            (trigger_cve_2021_33913, "CVE-2021-33913"),
        ],
    )
    def test_triggers_on_vulnerable(self, trigger, cve):
        report = trigger(patched=False)
        assert report.triggered
        assert report.cve == cve
        assert "overflow" in report.summary()

    @pytest.mark.parametrize(
        "trigger", [trigger_cve_2021_33912, trigger_cve_2021_33913]
    )
    def test_safe_on_patched(self, trigger):
        report = trigger(patched=True)
        assert not report.triggered
        assert "memory safe" in report.summary()

    def test_33912_needs_high_bytes(self):
        report = trigger_cve_2021_33912()
        assert any(ord(c) > 0x7F for c in report.sender)

    def test_33913_uses_reverse_and_url_macro(self):
        report = trigger_cve_2021_33913()
        macro = report.macro_string
        assert "R" in macro and macro.count("%{") == 1
        assert macro[2].isupper()  # uppercase letter => URL encoding


class TestFingerprintHelper:
    def test_paper_example(self):
        assert fingerprint_for("example.com") == "com.com.example"

    def test_patched(self):
        assert fingerprint_for("example.com", patched=True) == "example"

    def test_single_label_domain(self):
        assert fingerprint_for("localhost") == "localhost.localhost"
        assert fingerprint_for("localhost", patched=True) == "localhost"
