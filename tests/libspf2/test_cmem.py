"""Tests for the simulated C heap."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryCorruptionError, SimulationError
from repro.libspf2.cmem import CHeap


class TestAllocation:
    def test_malloc_returns_writable_buffer(self):
        heap = CHeap()
        buf = heap.malloc(8)
        buf.write_bytes(0, b"hello\x00")
        assert buf.cstring() == b"hello"

    def test_negative_malloc_rejected(self):
        with pytest.raises(SimulationError):
            CHeap().malloc(-1)

    def test_zero_size_allocation(self):
        heap = CHeap()
        buf = heap.malloc(0)
        with pytest.raises(MemoryCorruptionError):
            buf.write_byte(0, 1)  # slack 0: immediate report

    def test_live_block_accounting(self):
        heap = CHeap()
        a = heap.malloc(4)
        b = heap.malloc(4)
        assert heap.live_blocks == 2
        heap.free(a)
        assert heap.live_blocks == 1
        assert heap.total_allocated == 8


class TestBounds:
    def test_in_bounds_writes_clean(self):
        heap = CHeap()
        buf = heap.malloc(4)
        for i in range(4):
            buf.write_byte(i, 0x41)
        assert not heap.corrupted

    def test_write_past_end_raises_with_zero_slack(self):
        heap = CHeap(slack=0)
        buf = heap.malloc(4)
        with pytest.raises(MemoryCorruptionError) as excinfo:
            buf.write_byte(4, 0x41)
        assert excinfo.value.offset == 4
        assert heap.corrupted

    def test_slack_tolerates_small_overruns(self):
        heap = CHeap(slack=8)
        buf = heap.malloc(4)
        buf.write_byte(4, 0x41)  # inside slack: silent corruption
        assert heap.corrupted
        assert buf.overflowed

    def test_overrun_past_slack_raises(self):
        heap = CHeap(slack=2)
        buf = heap.malloc(4)
        buf.write_byte(5, 0x41)
        with pytest.raises(MemoryCorruptionError):
            buf.write_byte(6, 0x41)

    def test_underflow_rejected(self):
        heap = CHeap()
        buf = heap.malloc(4)
        with pytest.raises(MemoryCorruptionError):
            buf.write_byte(-1, 0x41)

    def test_wild_write_beyond_guard(self):
        heap = CHeap(slack=4, guard_size=8)
        buf = heap.malloc(2)
        with pytest.raises(MemoryCorruptionError):
            buf.write_byte(2 + 8, 0x41)

    def test_out_of_bounds_read_rejected(self):
        heap = CHeap(guard_size=4)
        buf = heap.malloc(2)
        with pytest.raises(MemoryCorruptionError):
            buf.read_byte(10)

    def test_overflow_bytes_forensics(self):
        heap = CHeap(slack=8)
        buf = heap.malloc(2)
        buf.write_bytes(0, b"ab")
        buf.write_bytes(2, b"XYZ")
        assert buf.overflow_bytes() == b"XYZ"

    def test_overflow_events_recorded(self):
        heap = CHeap(slack=8)
        buf = heap.malloc(2)
        buf.write_bytes(2, b"XY")
        assert heap.overflow_events == [(buf.block_id, 2), (buf.block_id, 3)]


class TestLifetime:
    def test_use_after_free(self):
        heap = CHeap()
        buf = heap.malloc(4)
        heap.free(buf)
        with pytest.raises(MemoryCorruptionError):
            buf.write_byte(0, 1)

    def test_read_after_free(self):
        heap = CHeap()
        buf = heap.malloc(4)
        heap.free(buf)
        with pytest.raises(MemoryCorruptionError):
            buf.read_byte(0)

    def test_double_free(self):
        heap = CHeap()
        buf = heap.malloc(4)
        heap.free(buf)
        with pytest.raises(MemoryCorruptionError):
            heap.free(buf)

    def test_guard_must_cover_slack(self):
        with pytest.raises(SimulationError):
            CHeap(slack=16, guard_size=8)


class TestCString:
    def test_cstring_stops_at_nul(self):
        heap = CHeap()
        buf = heap.malloc(8)
        buf.write_bytes(0, b"ab\x00cd")
        assert buf.cstring() == b"ab"

    def test_cstring_without_nul_returns_everything(self):
        heap = CHeap(guard_size=0)
        buf = heap.malloc(2)
        buf.write_bytes(0, b"ab")
        assert buf.cstring() == b"ab"


class TestProperties:
    @given(st.binary(min_size=0, max_size=64))
    def test_write_then_read_roundtrip(self, data):
        heap = CHeap()
        buf = heap.malloc(len(data) + 1)
        buf.write_bytes(0, data + b"\x00")
        assert buf.cstring() == data.split(b"\x00")[0]

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=16))
    def test_high_water_tracks_furthest_write(self, size, slack):
        heap = CHeap(slack=slack, guard_size=max(slack, 16))
        buf = heap.malloc(size)
        buf.write_byte(size - 1, 1)
        assert buf.high_water == size
