"""Tests for the C sprintf semantics behind CVE-2021-33912."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MemoryCorruptionError
from repro.libspf2.cmem import CHeap
from repro.libspf2.csprintf import c_hex_of_char, sprintf_url_encode_byte


class TestHexOfChar:
    @pytest.mark.parametrize(
        "byte,expected",
        [
            (0x00, "00"),
            (0x0F, "0f"),
            (0x41, "41"),
            (0x7F, "7f"),
            (0x80, "ffffff80"),  # the widening begins at 0x80
            (0xC3, "ffffffc3"),
            (0xFE, "fffffffe"),
            (0xFF, "ffffffff"),
        ],
    )
    def test_signed_char_platform(self, byte, expected):
        assert c_hex_of_char(byte) == expected

    @pytest.mark.parametrize("byte", [0x80, 0xFE, 0xFF])
    def test_unsigned_char_platform_is_safe(self, byte):
        assert len(c_hex_of_char(byte, char_is_signed=False)) == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            c_hex_of_char(256)
        with pytest.raises(ValueError):
            c_hex_of_char(-1)

    @given(st.integers(min_value=0, max_value=0x7F))
    def test_low_bytes_always_two_digits(self, byte):
        assert len(c_hex_of_char(byte)) == 2

    @given(st.integers(min_value=0x80, max_value=0xFF))
    def test_high_bytes_always_eight_digits(self, byte):
        hex_digits = c_hex_of_char(byte)
        assert len(hex_digits) == 8
        assert hex_digits.startswith("ffffff")


class TestSprintf:
    def test_low_byte_writes_four_bytes_total(self):
        heap = CHeap()
        buf = heap.malloc(4)  # '%' + 2 hex + NUL: the author's assumption
        written = sprintf_url_encode_byte(buf, 0, 0x2F)
        assert written == 3
        assert buf.cstring() == b"%2f"
        assert not heap.corrupted

    def test_high_byte_overflows_the_assumed_four(self):
        heap = CHeap(slack=16)
        buf = heap.malloc(4)
        written = sprintf_url_encode_byte(buf, 0, 0xFE)
        assert written == 9  # '%' + 8 hex digits
        assert buf.cstring() == b"%fffffffe"
        assert heap.corrupted  # 6 bytes past the allocation

    def test_high_byte_crashes_without_slack(self):
        heap = CHeap(slack=0)
        buf = heap.malloc(4)
        with pytest.raises(MemoryCorruptionError):
            sprintf_url_encode_byte(buf, 0, 0xFE)

    def test_unsigned_platform_never_overflows(self):
        heap = CHeap(slack=0)
        buf = heap.malloc(4)
        sprintf_url_encode_byte(buf, 0, 0xFE, char_is_signed=False)
        assert buf.cstring() == b"%fe"
        assert not heap.corrupted

    def test_offset_respected(self):
        heap = CHeap()
        buf = heap.malloc(8)
        buf.write_bytes(0, b"ab")
        sprintf_url_encode_byte(buf, 2, 0x21)
        assert buf.cstring() == b"ab%21"
