"""The paper's headline claims, asserted against a full simulated campaign.

These are the reproduction's acceptance tests: not absolute numbers (the
substrate is a simulator), but the *shape* of every major result —
who wins, by roughly what factor, and where the crossovers fall.
"""

import datetime as dt

import pytest

from repro.clock import (
    MEASUREMENTS_PAUSED,
    PRIVATE_NOTIFICATION,
    PUBLIC_DISCLOSURE,
)
from repro.analysis import build_figure2, build_figure7, build_table4
from repro.analysis.status import final_domain_status
from repro.core.campaign import DomainStatus
from repro.core.detector import DetectionOutcome
from repro.internet.population import DomainSet


class TestHeadlineRates:
    def test_roughly_one_in_six_measured_ips_vulnerable(self, session_sim, session_result):
        rows = build_table4(session_sim.population, session_result.initial)
        combined = rows[-1]
        share = combined.ips_vulnerable / combined.ips_measured
        assert 0.10 < share < 0.28  # paper: 17%

    def test_quarter_of_ips_expand_macros_incorrectly(self, session_sim, session_result):
        rows = build_table4(session_sim.population, session_result.initial)
        alexa = rows[0]
        share = (alexa.ips_vulnerable + alexa.ips_erroneous) / alexa.ips_measured
        assert 0.12 < share < 0.40  # paper: "close to a quarter"

    def test_two_week_set_less_vulnerable_than_alexa(self, session_sim, session_result):
        rows = {r.group: r for r in build_table4(session_sim.population, session_result.initial)}
        alexa = rows["Alexa Top List"]
        two_week = rows["2-Week MX"]
        if two_week.ips_measured >= 30:
            assert (
                two_week.ips_vulnerable / two_week.ips_measured
                < alexa.ips_vulnerable / alexa.ips_measured + 0.05
            )

    def test_roughly_80_percent_remain_vulnerable(self, session_sim):
        figure = build_figure7(session_sim)
        assert 0.65 < figure.final_vulnerable_fraction() < 0.95  # paper: ~80%

    def test_patching_around_15_percent_of_domains(self, session_sim):
        rows = build_figure2(session_sim)
        all_row = rows[0]
        assert 0.05 < all_row.patched_fraction < 0.30  # paper: ~15%


class TestDisclosureDynamics:
    def test_public_disclosure_drop_exceeds_private(self, session_sim):
        """The paper: public disclosure correlated with a much greater
        decrease in vulnerable MTAs than the private notification.

        Asserted on the ground-truth patch triggers (robust at any scale):
        disclosure-driven patching (the public event plus the package
        updates it released) dwarfs notification-driven patching.
        """
        import datetime as dt

        from repro.internet.patching import PatchTrigger

        plans = [p for p in session_sim.patch_model.plans() if p.patches]
        notification_driven = sum(
            1 for p in plans if p.trigger == PatchTrigger.PRIVATE_NOTIFICATION
        )
        disclosure_driven = sum(
            1
            for p in plans
            if p.trigger == PatchTrigger.PUBLIC_DISCLOSURE
            or (
                p.trigger == PatchTrigger.PACKAGE_MANAGER
                and p.patch_date >= PUBLIC_DISCLOSURE
            )
        )
        assert disclosure_driven > notification_driven

        # And the longitudinal series itself keeps falling after public
        # disclosure (the Debian-update wave).
        engine = session_sim.inference()
        summaries = engine.round_summaries_ips()
        post_public = [s for s in summaries if s.date >= PUBLIC_DISCLOSURE]
        assert post_public[-1].vulnerable < post_public[0].vulnerable

    def test_some_patching_precedes_any_notification(self, session_sim):
        """Proactive patching: visible before the private notification."""
        engine = session_sim.inference()
        summaries = [
            s for s in engine.round_summaries_ips() if s.date < PRIVATE_NOTIFICATION
        ]
        assert summaries[-1].patched >= summaries[0].patched
        assert summaries[-1].patched > 0

    def test_private_notification_barely_moves_patching(self, session_sim):
        from repro.internet.patching import PatchTrigger

        triggers = [p.trigger for p in session_sim.patch_model.plans() if p.patches]
        private = sum(1 for t in triggers if t == PatchTrigger.PRIVATE_NOTIFICATION)
        assert private <= max(1, len(triggers) // 10)


class TestPopulationOutliers:
    def test_alexa_1000_patches_least(self, session_sim):
        rows = {r.group: r for r in build_figure2(session_sim)}
        top = rows["Alexa 1000"]
        everyone = rows["All domains"]
        if top.total >= 3:
            assert top.patched_fraction <= everyone.patched_fraction + 0.02

    def test_vulnerable_providers_stay_vulnerable(self, session_sim, session_result):
        """Section 7.5: naver/mail.ru/wp.pl/seznam.cz measured vulnerable
        and unpatched through the study."""
        from repro.internet.population import VULNERABLE_PROVIDER_DOMAINS

        status = final_domain_status(session_sim)
        initial = session_result.initial
        for name in VULNERABLE_PROVIDER_DOMAINS:
            assert initial.domain_status[name] == DomainStatus.VULNERABLE
            assert status[name] == DomainStatus.VULNERABLE

    def test_gmail_class_providers_not_vulnerable(self, session_result):
        for name in ("gmail.com", "outlook.com", "yahoo.com", "icloud.com"):
            assert (
                session_result.initial.domain_status[name]
                != DomainStatus.VULNERABLE
            )


class TestMethodologyProperties:
    def test_no_email_ever_delivered_by_nomsg(self, session_sim):
        """NoMsg guarantees zero delivery; BlankMsg deliveries are blank."""
        for unit in session_sim.fleet.units:
            for ip in unit.all_ips:
                server = session_sim.campaign.network.server_at(ip)
                for message in server.inbox:
                    assert message.data == ""

    def test_vulnerable_set_has_no_false_positives(self, session_sim, session_result):
        fleet = session_sim.fleet
        for ip in session_result.initial.vulnerable_ips():
            assert fleet.unit_by_ip[ip].is_vulnerable

    def test_conclusive_measurements_match_ground_truth_exactly(
        self, session_sim, session_result
    ):
        fleet = session_sim.fleet
        mismatches = [
            ip
            for ip, record in session_result.initial.ip_records.items()
            if record.outcome.spf_measured
            and (record.outcome == DetectionOutcome.VULNERABLE)
            != fleet.unit_by_ip[ip].is_vulnerable
        ]
        assert mismatches == []
