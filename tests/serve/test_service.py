"""Admission and dispatch behavior of :class:`ScanService`.

The contracts under test: a full queue answers 429 immediately (no
unbounded backlog), per-tenant rate limiting reuses
:class:`EthicsControls` (second probe of one target inside the
reconnect wait → 429 with Retry-After; a different tenant is
unaffected), unknown methods 404, domain-level refusals are 404s (not
500s), and every completed request lands in the latency accounting.
"""

from __future__ import annotations

import datetime as _dt
import threading

import pytest

from repro import api
from repro.core.ethics import EthicsControls
from repro.serve import PROBE_METHODS, ScanService, exact_percentile

SCALE = 0.002
SEED = 5


@pytest.fixture(scope="module")
def handle():
    h = api.open_run(api.RunConfig(scale=SCALE, seed=SEED))
    h.ensure_initial()
    yield h
    h.close()


@pytest.fixture(scope="module")
def domain(handle):
    return handle.simulation.population.table.name_at(0)


def _service(handle, **kwargs):
    return ScanService(handle, **kwargs)


class TestExactPercentile:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert exact_percentile(samples, 0.50) == 50.0
        assert exact_percentile(samples, 0.99) == 99.0
        assert exact_percentile(samples, 1.00) == 100.0
        assert exact_percentile([7.0], 0.99) == 7.0

    def test_empty_raises(self):
        from repro.errors import ServeError

        with pytest.raises(ServeError):
            exact_percentile([], 0.5)


class TestAdmission:
    def test_unknown_method_404(self, handle):
        with _service(handle) as service:
            status, body = service.submit("explode", {})
            assert status == 404
            assert "unknown method" in body["error"]

    def test_probe_without_target_400(self, handle):
        with _service(handle) as service:
            for method in PROBE_METHODS:
                status, body = service.submit(method, {})
                assert status == 400

    def test_unknown_domain_is_404_not_500(self, handle):
        with _service(handle) as service:
            status, body = service.submit(
                "spf_census_row", {"target": "no-such.invalid"}
            )
            assert status == 404
            assert "unknown domain" in body["error"]

    def test_queue_full_answers_429(self, handle, domain, monkeypatch):
        """queue_depth=1 + a blocked dispatcher → next request refused."""
        release = threading.Event()
        entered = threading.Event()
        original = handle.census_row

        def slow_census(name):
            entered.set()
            release.wait(timeout=30)
            return original(name)

        monkeypatch.setattr(handle, "census_row", slow_census)
        service = _service(handle, queue_depth=1)
        service.start()
        try:
            # First request occupies the dispatcher...
            blocker = threading.Thread(
                target=service.submit,
                args=("spf_census_row", {"target": domain}),
                daemon=True,
            )
            blocker.start()
            assert entered.wait(timeout=10)
            # ...second fills the queue...
            filler = threading.Thread(
                target=service.submit,
                args=("spf_census_row", {"target": domain}),
                daemon=True,
            )
            filler.start()
            deadline = _dt.datetime.now() + _dt.timedelta(seconds=10)
            while service._queue.qsize() < 1:
                assert _dt.datetime.now() < deadline
            # ...third is refused immediately with queue-full.
            status, body = service.submit(
                "spf_census_row", {"target": domain}
            )
            assert status == 429
            assert body["reason"] == "queue-full"
            assert service.stats()["rejected_queue_full"] == 1
        finally:
            release.set()
            blocker.join(timeout=30)
            filler.join(timeout=30)
            service.stop()

    def test_queue_full_probe_releases_rate_limit_slot(
        self, handle, domain, monkeypatch
    ):
        """A probe bounced by the queue must not eat a concurrency slot."""
        release = threading.Event()
        entered = threading.Event()
        original = handle.census_row

        def slow_census(name):
            entered.set()
            release.wait(timeout=30)
            return original(name)

        monkeypatch.setattr(handle, "census_row", slow_census)
        service = _service(
            handle,
            queue_depth=1,
            tenant_limits=lambda: EthicsControls(
                max_concurrent_connections=1,
                min_reconnect_wait=_dt.timedelta(seconds=0),
            ),
        )
        service.start()
        try:
            blocker = threading.Thread(
                target=service.submit,
                args=("spf_census_row", {"target": domain}),
                daemon=True,
            )
            blocker.start()
            assert entered.wait(timeout=10)
            filler = threading.Thread(
                target=service.submit,
                args=("spf_census_row", {"target": domain}),
                daemon=True,
            )
            filler.start()
            deadline = _dt.datetime.now() + _dt.timedelta(seconds=10)
            while service._queue.qsize() < 1:
                assert _dt.datetime.now() < deadline
            status, body = service.submit("probe_domain", {"target": domain})
            assert status == 429 and body["reason"] == "queue-full"
            release.set()
            blocker.join(timeout=30)
            filler.join(timeout=30)
            # The slot was released on the bounce: with the queue drained
            # the same probe is admitted (concurrency cap is 1).
            status, body = service.submit("probe_domain", {"target": domain})
            assert status == 200
        finally:
            release.set()
            service.stop()


class TestRateLimit:
    def _limited(self, handle, *, wait_seconds=90):
        return _service(
            handle,
            tenant_limits=lambda: EthicsControls(
                min_reconnect_wait=_dt.timedelta(seconds=wait_seconds)
            ),
        )

    def test_reprobe_inside_wait_refused_with_retry_after(
        self, handle, domain
    ):
        with self._limited(handle) as service:
            status, _ = service.submit("probe_domain", {"target": domain})
            assert status == 200
            status, body = service.submit("probe_domain", {"target": domain})
            assert status == 429
            assert body["reason"] == "rate-limit"
            assert 0 < body["retry_after"] <= 90
            assert service.stats()["rejected_rate_limit"] == 1

    def test_limits_are_per_tenant(self, handle, domain):
        with self._limited(handle) as service:
            status, _ = service.submit(
                "probe_domain", {"target": domain}, tenant="alice"
            )
            assert status == 200
            # alice is rate limited on that target; bob is not.
            status, _ = service.submit(
                "probe_domain", {"target": domain}, tenant="alice"
            )
            assert status == 429
            status, _ = service.submit(
                "probe_domain", {"target": domain}, tenant="bob"
            )
            assert status == 200

    def test_reads_never_rate_limited(self, handle, domain):
        with self._limited(handle) as service:
            for _ in range(5):
                status, _ = service.submit(
                    "spf_census_row", {"target": domain}
                )
                assert status == 200


class TestAccounting:
    def test_stats_track_requests_and_latency(self, handle, domain):
        with _service(handle) as service:
            service.submit("spf_census_row", {"target": domain})
            service.submit("run_status", {})
            stats = service.stats()
            assert stats["requests"] == 2
            assert stats["by_method"] == {"run_status": 1, "spf_census_row": 1}
            assert stats["errors"] == 0
            assert stats["latency_ms"]["count"] == 2
            assert stats["latency_ms"]["max"] >= stats["latency_ms"]["p50"]

    def test_run_status_carries_world_and_service(self, handle, domain):
        with _service(handle) as service:
            status, body = service.submit("run_status", {})
            assert status == 200
            assert body["domains"] == len(handle.simulation.population)
            assert body["initial_complete"] is True
            assert "service" in body

    def test_internal_error_is_500_and_counted(self, handle, monkeypatch):
        def boom(name):
            raise RuntimeError("wires crossed")

        monkeypatch.setattr(handle, "census_row", boom)
        with _service(handle) as service:
            status, body = service.submit(
                "spf_census_row", {"target": "x.org"}
            )
            assert status == 500
            assert "internal error" in body["error"]
            assert service.stats()["errors"] == 1
