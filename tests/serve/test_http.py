"""End-to-end HTTP tests: real sockets, real client, resident world.

One module-scoped world backs two listeners (TCP on an ephemeral
loopback port, and a unix-domain socket), each with its own
:class:`ScanService`.  The tests drive them through :class:`ScanClient`
— the same code path the load tester and README walkthrough use — plus
raw ``http.client`` where the contract is about wire details
(Retry-After header, X-Tenant header, malformed bodies).
"""

from __future__ import annotations

import datetime as _dt
import http.client
import json

import pytest

from repro import api
from repro.core.ethics import EthicsControls
from repro.errors import ServeError
from repro.serve import ScanClient, ScanService, start_server

SCALE = 0.002
SEED = 5


@pytest.fixture(scope="module")
def handle():
    h = api.open_run(api.RunConfig(scale=SCALE, seed=SEED))
    h.ensure_initial()
    yield h
    h.close()


@pytest.fixture(scope="module")
def domain(handle):
    return handle.simulation.population.table.name_at(0)


def _limits():
    # A short reconnect wait so rate-limit tests re-admit quickly while
    # still exercising the refusal path.
    return EthicsControls(min_reconnect_wait=_dt.timedelta(seconds=90))


@pytest.fixture(scope="module")
def tcp_server(handle):
    service = ScanService(handle, tenant_limits=_limits)
    server, thread = start_server(service, host="127.0.0.1", port=0)
    yield server
    server.shutdown()
    service.stop()
    thread.join(timeout=10)


@pytest.fixture(scope="module")
def unix_server(handle, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("serve") / "scan.sock")
    service = ScanService(handle, tenant_limits=_limits)
    server, thread = start_server(service, socket_path=path)
    server.socket_path = path
    yield server
    server.shutdown()
    service.stop()
    thread.join(timeout=10)


def _client(tcp_server, **kwargs) -> ScanClient:
    host, port = tcp_server.server_address[:2]
    return ScanClient(host, port, **kwargs)


class TestTCPEndpoints:
    def test_healthz(self, tcp_server):
        with _client(tcp_server) as client:
            assert client.healthz() is True

    def test_probe_domain_returns_typed_result(self, tcp_server, domain):
        with _client(tcp_server, tenant="probe-tcp") as client:
            result = client.probe_domain(domain)
            assert result.kind == "probe_domain"
            assert result.target == domain
            assert result.ips

    def test_check_mta(self, tcp_server, handle, domain):
        ip = handle.census_row(domain)["ips"][0]
        with _client(tcp_server, tenant="mta-tcp") as client:
            result = client.check_mta(ip)
            assert result.kind == "check_mta"
            assert result.target == ip

    def test_census_row(self, tcp_server, domain):
        with _client(tcp_server) as client:
            row = client.census_row(domain)
            assert row["domain"] == domain
            assert row["v"] == api.SCHEMA_VERSION

    def test_patch_status_since(self, tcp_server, domain):
        with _client(tcp_server) as client:
            status = client.patch_status_since(domain, since=0)
            assert status["domain"] == domain
            assert isinstance(status["patched"], bool)

    def test_run_status_get_and_post(self, tcp_server, handle):
        with _client(tcp_server) as client:
            body = client.run_status()
            assert body["domains"] == len(handle.simulation.population)
            assert "service" in body
        # The GET spelling answers the same document shape.
        host, port = tcp_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/v1/run_status")
            response = conn.getresponse()
            decoded = json.loads(response.read().decode("utf-8"))
            assert response.status == 200
            assert decoded["domains"] == len(handle.simulation.population)
        finally:
            conn.close()

    def test_unknown_method_404(self, tcp_server):
        with _client(tcp_server) as client:
            status, body = client.request("explode", {})
            assert status == 404
            assert "unknown method" in body["error"]

    def test_unknown_path_404(self, tcp_server):
        host, port = tcp_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/nope", body=b"{}")
            assert conn.getresponse().status == 404
        finally:
            conn.close()

    def test_unknown_domain_raises_serve_error(self, tcp_server):
        with _client(tcp_server) as client:
            with pytest.raises(ServeError, match="unknown domain"):
                client.census_row("no-such.invalid")

    def test_bad_json_body_400(self, tcp_server):
        host, port = tcp_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request(
                "POST", "/v1/spf_census_row", body=b"{not json",
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 400
            assert "not JSON" in body["error"]
        finally:
            conn.close()

    def test_non_object_body_400(self, tcp_server):
        host, port = tcp_server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/v1/spf_census_row", body=b"[1, 2]")
            response = conn.getresponse()
            body = json.loads(response.read().decode("utf-8"))
            assert response.status == 400
            assert "JSON object" in body["error"]
        finally:
            conn.close()


class TestAdmissionOverHTTP:
    def test_rate_limit_sends_retry_after_header(self, tcp_server, domain):
        host, port = tcp_server.server_address[:2]
        payload = json.dumps(
            {"target": domain, "tenant": "limited-tcp"}
        ).encode("utf-8")
        conn = http.client.HTTPConnection(host, port, timeout=300)
        try:
            for expected in (200, 429):
                conn.request("POST", "/v1/probe_domain", body=payload)
                response = conn.getresponse()
                body = json.loads(response.read().decode("utf-8"))
                assert response.status == expected
            assert body["reason"] == "rate-limit"
            assert int(response.headers["Retry-After"]) >= 1
        finally:
            conn.close()

    def test_tenant_header_scopes_rate_limits(self, tcp_server, domain):
        """X-Tenant alone (no body field) must isolate tenants."""
        host, port = tcp_server.server_address[:2]
        payload = json.dumps({"target": domain}).encode("utf-8")

        def probe(tenant):
            conn = http.client.HTTPConnection(host, port, timeout=300)
            try:
                conn.request(
                    "POST", "/v1/probe_domain", body=payload,
                    headers={"X-Tenant": tenant},
                )
                return conn.getresponse().status
            finally:
                conn.close()

        assert probe("header-alice") == 200
        assert probe("header-alice") == 429
        assert probe("header-bob") == 200


class TestUnixSocket:
    def test_full_surface_over_unix_socket(self, unix_server, handle, domain):
        with ScanClient(
            socket_path=unix_server.socket_path, tenant="unix-probe"
        ) as client:
            assert client.healthz() is True
            result = client.probe_domain(domain)
            assert result.target == domain
            row = client.census_row(domain)
            assert row["domain"] == domain
            status = client.run_status()
            assert status["domains"] == len(handle.simulation.population)

    def test_client_reconnects_after_close(self, unix_server, domain):
        client = ScanClient(socket_path=unix_server.socket_path)
        try:
            assert client.census_row(domain)["domain"] == domain
            client.close()
            # A fresh connection is opened transparently.
            assert client.census_row(domain)["domain"] == domain
        finally:
            client.close()
