"""API probes emit byte-identical trace events to batch-run probes.

The acceptance contract of the serve redesign: answering a probe through
:class:`repro.api.RunHandle` dispatches through the *same* executor
engine as a batch ``repro run``, so the task-scoped trace events for the
first probe of a fresh world — virtual-time stamps, suite labels, DNS
queries, probe ids, everything — are the same bytes whether the probe
ran inside the initial sweep of a batch campaign or was requested
one-off through the API.

We compare the canonical JSONL lines for the first task scope
(``s0.t0``): both worlds are fresh, so stage 0/task 0 is the first
domain's first address in both, and the canonical sort key makes the
line order deterministic.  Stage-scoped events are excluded — stage
*names* legitimately differ (``"initial"`` vs ``"probe <domain>"``);
the per-task events must not.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.obs import Observation
from repro.simulation import Simulation

SCALE = 0.002
SEED = 5


def _task_lines(observation: Observation, scope: str):
    lines = []
    for line in observation.tracer.export_jsonl().splitlines():
        if json.loads(line)["scope"] == scope:
            lines.append(line)
    return lines


@pytest.fixture(scope="module")
def batch_observation():
    """A full batch run (the ``repro run`` code path), traced."""
    observation = Observation(trace=True)
    sim = Simulation.build(
        config=api.RunConfig(scale=SCALE, seed=SEED), observation=observation
    )
    sim.run()
    return observation


@pytest.fixture(scope="module")
def api_probe(batch_observation):
    observation = Observation(trace=True)
    handle = api.open_run(
        api.RunConfig(scale=SCALE, seed=SEED), observation=observation
    )
    try:
        domain = handle.simulation.population.table.name_at(0)
        result = handle.probe_domain(domain)
    finally:
        handle.close()
    return observation, result


def test_first_probe_task_is_byte_identical(batch_observation, api_probe):
    api_observation, _ = api_probe
    batch_lines = _task_lines(batch_observation, "s0.t0")
    api_lines = _task_lines(api_observation, "s0.t0")
    assert batch_lines, "batch initial sweep produced no s0.t0 events"
    assert batch_lines == api_lines


def test_task_events_carry_virtual_time_and_probe_ids(api_probe):
    api_observation, _ = api_probe
    lines = _task_lines(api_observation, "s0.t0")
    for line in lines:
        decoded = json.loads(line)
        assert decoded["vt"] is not None
        assert decoded["probe"]


def test_api_verdict_matches_batch_initial(batch_observation, api_probe):
    """Not just the trace: the classification itself must agree."""
    _, result = api_probe
    sim = Simulation.build(config=api.RunConfig(scale=SCALE, seed=SEED))
    initial = sim.campaign.run_initial()
    assert result.status == initial.domain_status[result.target].value
