"""Tests for the tracking-pixel server."""

import datetime as dt

from repro.notification.tracking import TrackingServer

T0 = dt.datetime(2021, 11, 15, tzinfo=dt.timezone.utc)


class TestTracking:
    def test_fetch_registered_token(self):
        server = TrackingServer()
        server.register("tok1", "example.com")
        assert server.fetch_pixel("tok1", T0)
        assert server.opened_domains() == ["example.com"]

    def test_unknown_token_rejected(self):
        server = TrackingServer()
        assert not server.fetch_pixel("nope", T0)
        assert server.total_requests == 0

    def test_first_open_preserved_across_refetches(self):
        server = TrackingServer()
        server.register("tok1", "example.com")
        server.fetch_pixel("tok1", T0)
        server.fetch_pixel("tok1", T0 + dt.timedelta(days=3))
        assert server.first_open("tok1") == T0
        assert server.total_requests == 2
        assert server.opened_tokens() == ["tok1"]

    def test_unopened_token_has_no_first_open(self):
        server = TrackingServer()
        server.register("tok1", "example.com")
        assert server.first_open("tok1") is None

    def test_multiple_tokens_independent(self):
        server = TrackingServer()
        server.register("a", "a.com")
        server.register("b", "b.com")
        server.fetch_pixel("b", T0)
        assert server.opened_domains() == ["b.com"]
