"""Tests for notification email composition."""

from repro.clock import CVE_IDS, PUBLIC_DISCLOSURE
from repro.notification.composer import TRACKING_HOST, compose_notification


class TestCompose:
    def test_addressed_to_postmaster(self):
        email = compose_notification("example.com", "tok1")
        assert email.recipient == "postmaster@example.com"

    def test_subject_names_domain(self):
        email = compose_notification("example.com", "tok1")
        assert "example.com" in email.subject

    def test_body_names_both_cves(self):
        email = compose_notification("example.com", "tok1")
        for cve in CVE_IDS:
            assert cve in email.plain_body

    def test_body_announces_disclosure_date(self):
        email = compose_notification("example.com", "tok1")
        assert PUBLIC_DISCLOSURE.date().isoformat() in email.plain_body

    def test_body_offers_remediation_options(self):
        email = compose_notification("example.com", "tok1")
        assert "upgrade" in email.plain_body.lower()
        assert "different SPF" in email.plain_body

    def test_tracking_pixel_in_html_only(self):
        email = compose_notification("example.com", "tokXYZ")
        assert "tokXYZ" in email.html_body
        assert TRACKING_HOST in email.html_body
        assert "tokXYZ" not in email.plain_body  # plain part untracked

    def test_plain_text_alternative_present(self):
        email = compose_notification("example.com", "tok1")
        assert email.plain_body.strip()
        assert "<img" not in email.plain_body

    def test_tracking_url_carries_token(self):
        email = compose_notification("example.com", "tok42")
        assert email.tracking_url.endswith("tok42.png")

    def test_custom_disclosure_date(self):
        from repro.clock import utc

        email = compose_notification(
            "example.com", "t", disclosure_date=utc(2022, 3, 1)
        )
        assert "2022-03-01" in email.plain_body
