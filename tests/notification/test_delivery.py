"""Tests for notification delivery and its coupling to patching."""

import datetime as dt

import pytest

from repro.clock import PRIVATE_NOTIFICATION, PUBLIC_DISCLOSURE, SimulatedClock
from repro.dns import CachingResolver
from repro.internet.mta_fleet import build_fleet
from repro.internet.patching import PatchBehaviorModel, PatchTrigger
from repro.internet.population import PopulationConfig, generate_population
from repro.notification.delivery import NotificationCampaign


@pytest.fixture()
def setup():
    population = generate_population(PopulationConfig(scale=0.02, seed=9))
    fleet = build_fleet(population)
    clock = SimulatedClock()
    network = fleet.build_network(
        lambda: clock.now, CachingResolver(clock=lambda: clock.now)
    )
    model = PatchBehaviorModel(seed=9)
    campaign = NotificationCampaign(fleet, model, network, clock, seed=9)
    vulnerable_domains = [d.name for d in fleet.vulnerable_domains()]
    return fleet, clock, model, campaign, vulnerable_domains


class TestDeduplication:
    def test_one_email_per_hosting_unit(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        units_covered = {fleet.unit_by_domain[d].unit_id for d in domains}
        assert report.sent == len(units_covered)

    def test_covered_domains_recorded(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        covered = [d for r in report.records for d in r.covered_domains]
        assert sorted(covered) == sorted(domains)

    def test_unknown_domains_ignored(self, setup):
        fleet, clock, model, campaign, _ = setup
        report = campaign.send_notifications(["not-a-domain.zz"], PRIVATE_NOTIFICATION)
        assert report.sent == 0


class TestBounces:
    def test_bounce_rate_near_paper(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        if report.sent < 20:
            pytest.skip("too few notifications at this scale")
        # Paper: 31.6% returned undelivered.
        assert 0.15 < report.bounced / report.sent < 0.50

    def test_bounces_follow_unit_flag(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        for record in report.records:
            unit = fleet.units[record.unit_id]
            assert record.delivered == unit.accepts_postmaster


class TestOpens:
    def test_opens_only_after_scheduling_fires(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        assert report.opened == 0  # nothing fired yet
        clock.advance_to(PUBLIC_DISCLOSURE)
        assert report.opened == campaign.tracking.total_requests
        assert report.opened <= report.delivered

    def test_open_rate_near_paper(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        clock.advance_to(PUBLIC_DISCLOSURE)
        if report.delivered < 30:
            pytest.skip("too few deliveries at this scale")
        # Paper: 12% of delivered were opened (lower bound).
        assert 0.02 < report.opened / report.delivered < 0.30

    def test_opens_happen_before_public_disclosure(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        clock.advance_to(PUBLIC_DISCLOSURE + dt.timedelta(days=30))
        for record in report.records:
            if record.opened:
                assert record.opened_at < PUBLIC_DISCLOSURE

    def test_opens_may_change_patch_plans(self, setup):
        fleet, clock, model, campaign, domains = setup
        campaign.open_probability = 1.0  # force everyone to open
        model.notification_response_probability = 1.0
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        clock.advance_to(PUBLIC_DISCLOSURE)
        responders = [
            plan
            for plan in model.plans()
            if plan.trigger == PatchTrigger.PRIVATE_NOTIFICATION
        ]
        assert responders
        for plan in responders:
            assert PRIVATE_NOTIFICATION <= plan.patch_date < PUBLIC_DISCLOSURE


class TestReportCounters:
    def test_funnel_arithmetic(self, setup):
        fleet, clock, model, campaign, domains = setup
        report = campaign.send_notifications(domains, PRIVATE_NOTIFICATION)
        assert report.sent == report.delivered + report.bounced
        assert set(report.delivered_unit_ids()).isdisjoint(report.bounced_unit_ids())
