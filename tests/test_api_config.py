"""The RunConfig build API and its deprecated keyword shims.

``Simulation.build(config=RunConfig(...))`` is the primary signature;
the old ``scale=``/``seed=``/``executor=`` keywords must keep working
(warning once) and produce *identical* experiments — asserted down to
the trace bytes.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import RunConfig
from repro.errors import SimulationError
from repro.obs import Observation
from repro.simulation import Simulation

SCALE = 0.002
SEED = 5


class TestBuildShims:
    def test_legacy_keywords_warn(self):
        with pytest.warns(DeprecationWarning, match="config=repro.api.RunConfig"):
            Simulation.build(scale=SCALE, seed=SEED)

    def test_config_build_emits_no_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = Simulation.build(config=RunConfig(scale=SCALE, seed=SEED))
        assert sim.config.scale == SCALE

    def test_config_plus_legacy_keywords_rejected(self):
        with pytest.raises(SimulationError, match="not both"):
            Simulation.build(config=RunConfig(scale=SCALE), seed=SEED)

    def test_build_records_its_config(self):
        config = RunConfig(scale=SCALE, seed=SEED, executor="sharded", workers=3)
        sim = Simulation.build(config=config)
        assert sim.config is config

    def test_legacy_build_synthesizes_an_equivalent_config(self):
        with pytest.warns(DeprecationWarning):
            sim = Simulation.build(scale=SCALE, seed=SEED, workers=3)
        config = RunConfig(scale=SCALE, seed=SEED, workers=3)
        assert sim.config.content_hash() == config.content_hash()
        assert sim.config.workers == 3


class TestEquivalence:
    def test_legacy_and_config_builds_trace_identically(self, tmp_path):
        obs_old = Observation(trace=True)
        with pytest.warns(DeprecationWarning):
            old = Simulation.build(
                scale=SCALE, seed=SEED, executor="sharded", workers=3,
                observation=obs_old,
            )
        old.run()

        obs_new = Observation(trace=True)
        new = Simulation.build(
            config=RunConfig(
                scale=SCALE, seed=SEED, executor="sharded", workers=3, trace=True
            ),
            observation=obs_new,
        )
        new.run()

        left = tmp_path / "old.jsonl"
        right = tmp_path / "new.jsonl"
        obs_old.tracer.write_jsonl(str(left))
        obs_new.tracer.write_jsonl(str(right))
        assert left.read_bytes() == right.read_bytes()
        assert old.result.snapshot_status == new.result.snapshot_status
