"""Unit tests for the virtual-time tracer."""

from __future__ import annotations

import datetime as _dt
import json

import pytest

from repro.obs import Observation, Tracer, observing
from repro.obs import context as _obs


def _clock_at(instant: _dt.datetime):
    return lambda: instant


T0 = _dt.datetime(2021, 10, 11, tzinfo=_dt.timezone.utc)


class TestDisabledTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=3)
        tracer.begin_task(0, "suite/1.2.3.4")
        tracer.event("dns.query", qname="example.com")
        with tracer.span("smtp.transaction", server="1.2.3.4"):
            tracer.event("smtp.reply", code=250)
        tracer.end_task()
        tracer.end_stage()
        assert tracer.events() == []
        assert tracer.export_jsonl() == ""

    def test_inactive_context_is_none(self):
        assert _obs.ACTIVE is None

    def test_observing_restores_previous(self):
        obs = Observation(trace=True)
        with observing(obs):
            assert _obs.ACTIVE is obs
        assert _obs.ACTIVE is None


class TestSpans:
    def test_span_ids_nest_parent_child(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(0, "suite/1.2.3.4")
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                tracer.event("leaf")
        tracer.end_task()
        tracer.end_stage()

        assert outer_id == "s0.t0#0"
        assert inner_id == "s0.t0#1"
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["outer.begin"].parent is None
        assert by_name["inner.begin"].parent == outer_id
        # Events emitted inside a span carry the innermost open span id.
        assert by_name["leaf"].span == inner_id
        assert by_name["outer.end"].span == outer_id

    def test_task_events_carry_probe_id(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(4, "saaaa/10.0.0.9")
        tracer.event("dns.query", qname="x.example")
        tracer.end_task()
        tracer.end_stage()
        task_events = [e for e in tracer.events() if e.scope == "s0.t4"]
        assert task_events and all(e.probe == "saaaa/10.0.0.9" for e in task_events)


class TestExceptionPaths:
    """The unwind paths: spans left open by exceptions, dropped tasks."""

    def test_span_exit_on_exception_emits_end_and_unwinds_stack(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(0, "suite/1.2.3.4")
        with pytest.raises(RuntimeError):
            with tracer.span("outer") as outer_id:
                with tracer.span("inner"):
                    raise RuntimeError("probe blew up")
        names = [e.name for e in tracer.events()]
        # both .end events were still emitted, innermost first
        assert names[-2:] == ["inner.end", "outer.end"]
        # the span stack fully unwound: the next event has no span
        tracer.event("after")
        assert tracer.events()[-1].span is None
        assert outer_id == "s0.t0#0"

    def test_drop_task_abandons_scope_without_task_end(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(0, "suite/1.2.3.4")
        tracer.drop_task()
        tracer.event("afterwards")
        names = [e.name for e in tracer.events()]
        assert "task.end" not in names
        # events after the drop land in the stage scope, not the task's
        event = tracer.events()[-1]
        assert event.scope == "s0"
        assert event.probe is None

    def test_nested_span_parentage_survives_task_scope_switch(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=2)
        tracer.begin_task(0, "suite/a")
        with tracer.span("first"):
            pass
        tracer.end_task()
        tracer.begin_task(1, "suite/b")
        with tracer.span("outer") as outer_id:
            with tracer.span("inner") as inner_id:
                tracer.event("leaf")
        tracer.end_task()
        tracer.end_stage()
        # span ids restart per task scope, and parentage holds in task 1
        assert outer_id == "s0.t1#0"
        assert inner_id == "s0.t1#1"
        by_name = {e.name: e for e in tracer.events() if e.scope == "s0.t1"}
        assert by_name["outer.begin"].parent is None
        assert by_name["inner.begin"].parent == outer_id
        assert by_name["leaf"].span == inner_id


class TestCanonicalExport:
    def test_export_is_sorted_and_valid_jsonl(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=2)
        # Emit tasks out of index order, as a worker pool might.
        tracer.begin_task(1, "suite/b")
        tracer.event("dns.query", qname="b")
        tracer.end_task()
        tracer.begin_task(0, "suite/a")
        tracer.event("dns.query", qname="a")
        tracer.end_task()
        tracer.end_stage()

        lines = tracer.export_jsonl().splitlines()
        decoded = [json.loads(line) for line in lines]
        scopes = [d["scope"] for d in decoded]
        # Canonical order: stage.begin, then task 0, then task 1, then end.
        assert scopes.index("s0.t0") < scopes.index("s0.t1")
        assert decoded[0]["name"] == "stage.begin"
        assert decoded[-1]["name"] == "stage.end"
        keys = [e.key for e in tracer.canonical_events()]
        assert keys == sorted(keys)

    def test_events_are_stamped_with_virtual_time(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.event("tick")
        tracer.end_stage()
        assert all(e.vt == T0 for e in tracer.events())

    def test_write_jsonl_returns_written_event_count(self, tmp_path):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(0, "suite/a")
        tracer.event("dns.query", qname="a")
        tracer.end_task()
        tracer.end_stage()
        path = tmp_path / "trace.jsonl"
        count = tracer.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(tracer.events())
        # the file is exactly the canonical export plus a trailing newline
        assert path.read_text() == tracer.export_jsonl() + "\n"

    def test_explicit_vt_override_wins(self):
        tracer = Tracer(enabled=True, clock=_clock_at(T0))
        later = T0 + _dt.timedelta(seconds=42)
        tracer.begin_stage("initial", tasks=1)
        tracer.begin_task(0, "suite/a", vt=later)
        tracer.end_task(vt=later)
        tracer.end_stage()
        by_name = {e.name: e for e in tracer.events()}
        assert by_name["task.begin"].vt == later
        assert by_name["task.end"].vt == later
