"""Tests for the trace analysis toolkit (`repro.obs.analyze`)."""

from __future__ import annotations

import datetime as _dt

import pytest

from repro.api import RunConfig
from repro.obs import Observation, Tracer
from repro.obs.analyze import TraceAnalysis
from repro.obs.records import load_jsonl, parse_jsonl, split_scope
from repro.simulation import Simulation

SCALE = 0.002
SEED = 5


@pytest.fixture(scope="module")
def traced_sim():
    observation = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(scale=SCALE, seed=SEED), observation=observation
    )
    sim.run()
    return sim, observation


@pytest.fixture(scope="module")
def analysis(traced_sim):
    _, observation = traced_sim
    return TraceAnalysis.from_tracer(observation.tracer)


class TestRecords:
    def test_split_scope(self):
        assert split_scope("run") == (None, None)
        assert split_scope("s3") == (3, None)
        assert split_scope("s3.t12") == (3, 12)
        assert split_scope("t5") == (None, 5)

    def test_parse_round_trips_canonical_serialization(self, traced_sim):
        _, observation = traced_sim
        text = observation.tracer.export_jsonl()
        events = parse_jsonl(text)
        assert "\n".join(e.to_json() for e in events) == text

    def test_file_and_tracer_loads_agree(self, traced_sim, tmp_path):
        _, observation = traced_sim
        path = tmp_path / "trace.jsonl"
        count = observation.tracer.write_jsonl(str(path))
        from_file = load_jsonl(str(path))
        assert len(from_file) == count
        analysis_file = TraceAnalysis(from_file)
        analysis_live = TraceAnalysis.from_tracer(observation.tracer)
        assert len(analysis_file.events) == len(analysis_live.events)
        assert [s.name for s in analysis_file.stages] == [
            s.name for s in analysis_live.stages
        ]

    def test_malformed_line_raises_with_line_number(self):
        from repro.obs.records import TraceFormatError

        with pytest.raises(TraceFormatError, match="line 1"):
            parse_jsonl("not json at all")


class TestStageReconstruction:
    def test_stage_names_and_counts(self, analysis):
        names = [stage.name for stage in analysis.stages]
        assert names[0] == "initial"
        assert names[-1] == "snapshot"
        assert any(name.startswith("round ") for name in names)
        for stage in analysis.stages:
            assert stage.task_count == stage.declared_tasks
            assert stage.probes >= stage.task_count
            assert stage.event_count > 0

    def test_tasks_align_with_trace_task_begins(self, analysis):
        begins = analysis.name_counts["task.begin"]
        assert len(analysis.tasks) == begins > 0
        assert all(task.end is not None for task in analysis.tasks)
        assert all(task.outcome is not None for task in analysis.tasks)

    def test_timeline_returns_one_probes_events(self, analysis):
        task = analysis.tasks[0]
        events = analysis.timeline(task.probe)
        assert events
        assert all(e.probe == task.probe for e in events)
        assert {"task.begin", "task.end"} <= {e.name for e in events}


class TestAggregates:
    def test_span_histograms_cover_nested_spans(self, analysis):
        histograms = analysis.span_duration_histograms()
        assert "smtp.transaction" in histograms
        # spf.check_host spans are nested inside smtp.transaction; the
        # tree walk must still count them.
        assert "spf.check_host" in histograms
        assert histograms["smtp.transaction"].count > 0

    def test_task_duration_histogram_has_exact_percentiles(self, analysis):
        histogram = analysis.task_duration_histogram()
        assert histogram.count == len(analysis.tasks)
        assert histogram.percentile(99) >= histogram.percentile(50) >= 0

    def test_critical_path_descends_run_stage_task(self, analysis):
        steps = analysis.critical_path()
        kinds = [step.kind for step in steps]
        assert kinds[:3] == ["run", "stage", "task"]
        assert steps[0].seconds >= steps[1].seconds

    def test_virtual_window_spans_the_campaign(self, analysis):
        assert analysis.virtual_start is not None
        assert analysis.virtual_end is not None
        # the four-month campaign covers > 100 simulated days
        assert analysis.virtual_seconds > 100 * 86400


class TestRendering:
    def test_markdown_summary_sections(self, analysis):
        text = analysis.render_markdown()
        assert "# Trace summary" in text
        assert "## Stages" in text
        assert "## Critical path (virtual time)" in text
        assert "p50" in text and "p99" in text
        assert "| initial |" in text

    def test_folded_stacks_are_flamegraph_lines(self, analysis):
        folded = analysis.folded_stacks()
        lines = folded.splitlines()
        assert lines
        for line in lines:
            path, value = line.rsplit(" ", 1)
            assert path.startswith("campaign;")
            assert int(value) > 0

    def test_event_table_lists_top_names(self, analysis):
        table = analysis.render_event_table(top=5)
        assert table.count("\n") >= 5
        assert "smtp.reply" in table or "dns.query" in table


class TestDegenerateTraces:
    def test_empty_trace(self):
        analysis = TraceAnalysis([])
        assert analysis.stages == [] and analysis.tasks == []
        assert analysis.virtual_seconds == 0.0
        assert "Trace summary" in analysis.render_markdown()
        assert analysis.folded_stacks() == ""

    def test_unstamped_hand_built_trace(self):
        tracer = Tracer(enabled=True)
        tracer.begin_stage("unit", tasks=1)
        tracer.begin_task(0, "suite/1.2.3.4")
        with tracer.span("work"):
            tracer.event("tick")
        tracer.end_task()
        tracer.end_stage()
        analysis = TraceAnalysis.from_tracer(tracer)
        assert len(analysis.stages) == 1
        assert len(analysis.tasks) == 1
        assert analysis.tasks[0].spans[0].name == "work"
        # no vt stamps → zero durations, but rendering still works
        assert analysis.virtual_seconds == 0.0
        assert "unit" in analysis.render_markdown()


def test_analysis_is_deterministic_across_executors(tmp_path):
    """The analyzer consumes canonical traces, so summaries agree too."""
    summaries = []
    for executor, workers in (("serial", 1), ("sharded", 3)):
        observation = Observation(trace=True)
        sim = Simulation.build(
            config=RunConfig(
                scale=SCALE, seed=SEED, executor=executor, workers=workers
            ),
            observation=observation,
        )
        sim.run()
        analysis = TraceAnalysis.from_tracer(observation.tracer)
        summaries.append(analysis.render_markdown() + analysis.folded_stacks())
    assert summaries[0] == summaries[1]
