"""Tests for the determinism diff (`repro.obs.diff`)."""

from __future__ import annotations

import datetime as _dt
import json

import pytest

from repro.obs import Tracer
from repro.obs.diff import assert_traces_identical, diff_events, diff_files
from repro.obs.records import parse_jsonl

T0 = _dt.datetime(2021, 10, 11, tzinfo=_dt.timezone.utc)


def _build_tracer() -> Tracer:
    tracer = Tracer(enabled=True, clock=lambda: T0)
    tracer.begin_stage("initial", tasks=2)
    for index, ip in enumerate(("10.0.0.1", "10.0.0.2")):
        tracer.begin_task(index, f"suite/{ip}", ip=ip)
        with tracer.span("smtp.transaction", server=ip):
            tracer.event("smtp.reply", code=250, server=ip)
            tracer.event("dns.query", qname=f"q{index}.example", rrtype="TXT")
        tracer.end_task(outcome="vulnerable")
    tracer.end_stage(probes=2)
    return tracer


def _corrupt_line(text: str, line_index: int, mutate) -> str:
    lines = text.splitlines()
    payload = json.loads(lines[line_index])
    mutate(payload)
    lines[line_index] = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return "\n".join(lines)


class TestIdentical:
    def test_identical_tracers_have_no_divergence(self):
        assert diff_events(_build_tracer(), _build_tracer()) is None

    def test_identical_files(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        _build_tracer().write_jsonl(str(a))
        _build_tracer().write_jsonl(str(b))
        assert diff_files(str(a), str(b)) is None

    def test_assert_helper_passes_silently(self):
        assert_traces_identical(_build_tracer(), _build_tracer())


class TestDivergence:
    def test_attrs_corruption_is_pinpointed(self):
        text = _build_tracer().export_jsonl()
        events = parse_jsonl(text)
        target = next(e.index for e in events if e.name == "smtp.reply")
        corrupted = _corrupt_line(
            text, target, lambda payload: payload["attrs"].update(code=550)
        )
        divergence = diff_events(events, parse_jsonl(corrupted))
        assert divergence is not None
        assert divergence.index == target
        assert divergence.fields == ["attrs"]
        assert divergence.attrs_delta == {"code": (250, 550)}
        rendered = divergence.render("serial", "sharded")
        assert f"first divergence at event {target}" in rendered
        assert "scope=" in rendered and "seq=" in rendered
        assert "attrs['code']: serial=250 sharded=550" in rendered

    def test_context_shows_preceding_shared_events(self):
        text = _build_tracer().export_jsonl()
        corrupted = _corrupt_line(
            text, 6, lambda payload: payload.update(name="dns.queryX")
        )
        divergence = diff_events(
            parse_jsonl(text), parse_jsonl(corrupted), context=2
        )
        assert divergence is not None
        assert [e.index for e in divergence.context] == [4, 5]
        assert "name" in divergence.fields

    def test_vt_divergence_reports_vt_field(self):
        text = _build_tracer().export_jsonl()
        corrupted = _corrupt_line(
            text,
            2,
            lambda payload: payload.update(vt="2021-10-11T00:00:01+00:00"),
        )
        divergence = diff_events(parse_jsonl(text), parse_jsonl(corrupted))
        assert divergence is not None
        assert divergence.index == 2
        assert divergence.fields == ["vt"]

    def test_truncated_trace_reports_missing_tail(self):
        events = parse_jsonl(_build_tracer().export_jsonl())
        divergence = diff_events(events, events[:-2])
        assert divergence is not None
        assert divergence.index == len(events) - 2
        assert divergence.right is None and divergence.left is not None
        assert "<trace ends here>" in divergence.render()

    def test_assert_helper_raises_with_pointer(self):
        text = _build_tracer().export_jsonl()
        events = parse_jsonl(text)
        target = next(e.index for e in events if e.name == "smtp.reply")
        corrupted = _corrupt_line(
            text, target, lambda payload: payload["attrs"].update(code=550)
        )
        with pytest.raises(
            AssertionError, match=f"first divergence at event {target}"
        ):
            assert_traces_identical(events, parse_jsonl(corrupted))
