"""Serial and sharded runs must produce byte-identical canonical traces.

The tracer's contract (see :mod:`repro.obs.trace`) extends the executor
byte-identity guarantee of ``tests/exec/test_determinism.py`` to the
observability layer: every event is stamped with virtual time and sorted
by identity-derived keys, so the canonical JSONL export for the same
seed is the same byte string no matter which strategy ran the probes.
"""

from __future__ import annotations

import json

import pytest

from repro.api import RunConfig
from repro.obs import Observation
from repro.simulation import Simulation

SCALE = 0.02
SEED = 20211011
WORKERS = 7


def _traced_run(executor: str, workers: int) -> Observation:
    observation = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(
            scale=SCALE, seed=SEED, executor=executor, workers=workers
        ),
        observation=observation,
    )
    sim.run()
    return observation


@pytest.fixture(scope="module")
def traces():
    serial = _traced_run("serial", 1)
    sharded = _traced_run("sharded", WORKERS)
    return serial, sharded


def test_canonical_traces_are_byte_identical(traces):
    serial, sharded = traces
    assert serial.tracer.export_jsonl() == sharded.tracer.export_jsonl()


def test_trace_is_nonempty_valid_jsonl_with_vt_and_probe_ids(traces):
    serial, _ = traces
    lines = serial.tracer.export_jsonl().splitlines()
    assert len(lines) > 1000
    task_scoped = 0
    for line in lines:
        decoded = json.loads(line)
        assert decoded["vt"] is not None, f"wall-clock-free stamp missing: {decoded}"
        if ".t" in decoded["scope"]:
            task_scoped += 1
            assert decoded["probe"], f"task event without probe id: {decoded}"
    assert task_scoped > 0


def test_task_scopes_cover_every_probe(traces):
    serial, _ = traces
    events = serial.tracer.canonical_events()
    begins = sum(1 for e in events if e.name == "task.begin")
    ends = sum(1 for e in events if e.name == "task.end")
    assert begins == ends > 0
