"""Tests for the live progress reporter (`repro.obs.progress`)."""

from __future__ import annotations

import io

from repro.obs import Observation
from repro.obs.progress import ProgressReporter, _format_eta
from repro.simulation import Simulation


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class FakeMetrics:
    def __init__(self, probes=0, retried=0, refused=0) -> None:
        self.probes_attempted = probes
        self.retried = retried
        self.refused = refused


def _lines(stream: io.StringIO):
    """Rendered frames: carriage-return separated repaints, stripped."""
    return [
        frame.strip()
        for frame in stream.getvalue().replace("\n", "\r").split("\r")
        if frame.strip()
    ]


class TestFormatting:
    def test_format_eta(self):
        assert _format_eta(5.4) == "5s"
        assert _format_eta(125) == "2m05s"
        assert _format_eta(7322) == "2h02m"
        assert _format_eta(-1) == "-"


class TestReporter:
    def test_renders_stage_counts_rate_and_eta(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0, clock=clock)
        reporter.begin_stage("initial", 4)
        clock.tick(1.0)
        reporter.task_done(FakeMetrics(probes=2, retried=1, refused=1))
        clock.tick(1.0)
        reporter.end_stage(FakeMetrics(probes=4, retried=1, refused=1))
        frames = _lines(stream)
        assert any("stage initial: 1/4 tasks (25%)" in f for f in frames)
        assert any("ETA" in f for f in frames)
        assert any("1 retried, 1 refused" in f for f in frames)
        # the final frame is always rendered and terminated with \n
        assert "4/4 tasks (100%)" in frames[-1]
        assert stream.getvalue().endswith("\n")

    def test_wall_clock_throttling(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.5, clock=clock)
        reporter.begin_stage("initial", 100)
        for _ in range(10):
            clock.tick(0.01)  # 10 ticks inside one 0.5 s window
            reporter.task_done(FakeMetrics(probes=1))
        frames = _lines(stream)
        # begin_stage forces one frame; the 10 fast ticks add none
        assert len(frames) == 1
        clock.tick(1.0)
        reporter.task_done(FakeMetrics(probes=11))
        assert len(_lines(stream)) == 2

    def test_idle_reporter_ignores_stray_calls(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream, clock=FakeClock())
        reporter.task_done(FakeMetrics())
        reporter.end_stage(FakeMetrics())
        assert stream.getvalue() == ""

    def test_zero_task_stage(self):
        clock, stream = FakeClock(), io.StringIO()
        reporter = ProgressReporter(stream, min_interval=0.0, clock=clock)
        reporter.begin_stage("empty", 0)
        reporter.end_stage(FakeMetrics())
        assert "0/0 tasks (100%)" in _lines(stream)[-1]


class TestEngineIntegration:
    SCALE = 0.002
    SEED = 5

    def _run(self, with_progress: bool):
        from repro.api import RunConfig

        observation = Observation(trace=True)
        sim = Simulation.build(
            config=RunConfig(scale=self.SCALE, seed=self.SEED),
            observation=observation,
        )
        stream = io.StringIO()
        if with_progress:
            sim.campaign.executor.progress = ProgressReporter(
                stream, min_interval=0.0
            )
        sim.run()
        return observation, stream

    def test_progress_renders_without_altering_the_trace(self):
        baseline, _ = self._run(with_progress=False)
        with_progress, stream = self._run(with_progress=True)
        # operator output exists and looks like progress...
        output = stream.getvalue()
        assert "stage initial:" in output
        assert "probes/s" in output and "ETA" in output
        # ...and the trace bytes are untouched (the --progress contract).
        assert (
            baseline.tracer.export_jsonl() == with_progress.tracer.export_jsonl()
        )
