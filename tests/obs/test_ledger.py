"""Tests for the cross-run performance ledger (:mod:`repro.obs.ledger`).

Three layers:

- record shape: golden-file round-trip (parse -> validate -> serialize
  must be byte-identical), append/read symmetry, slice loading;
- the noise-gated comparison protocol: clear regression, clear
  improvement, noise-mooted, metric direction, declared-noise folding;
- the CLI end to end: ``obs history`` / ``obs regress`` exit codes on
  synthetic ledgers, a real ``run --ledger`` appending exactly one
  well-formed record, identical reruns NOT firing the gate on this
  noisy container, and a sleep-instrumented slowdown firing it.
"""

import json
import pathlib

import pytest

from repro.__main__ import main
from repro.obs import ledger as L

DATA = pathlib.Path(__file__).resolve().parent / "data"
GOLDEN = DATA / "ledger_golden.jsonl"


def _record(value: float, *, kind: str = "run", noise=None, **overrides) -> dict:
    """A minimal valid run record carrying one probes_per_second sample."""
    rec = {
        "v": L.LEDGER_VERSION,
        "kind": kind,
        "ts": 1754600000.0,
        "config_hash": "cafe" * 16,
        "env": {"cpus": 1, "python": "3.11.7"},
        "probes_per_second": value,
        # pre-rounded so records survive the serializer's 6-digit float
        # canonicalization byte-identically
        "wall_seconds": round(1000.0 / value, 6),
    }
    if noise is not None:
        rec["noise"] = noise
    rec.update(overrides)
    return rec


def _write_ledger(path, values, **kwargs) -> str:
    for value in values:
        L.append_record(str(path), _record(value, **kwargs))
    return str(path)


class TestRecordShape:
    def test_golden_round_trip(self):
        """Parsing the committed golden ledger and re-serializing every
        record must reproduce the file byte for byte — the on-disk shape
        is an interchange format, not an implementation detail."""
        records = L.read_ledger(str(GOLDEN))
        assert len(records) == 2
        round_tripped = "".join(
            L.serialize_record(L.validate_record(rec)) + "\n" for rec in records
        )
        assert round_tripped == GOLDEN.read_text()

    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        first = _record(1234.5)
        second = _record(2345.6, kind="resume")
        L.append_record(str(path), first)
        L.append_record(str(path), second)
        assert L.read_ledger(str(path)) == [first, second]

    def test_append_rejects_invalid(self, tmp_path):
        with pytest.raises(L.LedgerError):
            L.append_record(str(tmp_path / "l.jsonl"), {"kind": "run"})

    def test_validate_rejects_bad_version_and_env(self):
        rec = _record(1.0)
        with pytest.raises(L.LedgerError):
            L.validate_record(dict(rec, v=99))
        with pytest.raises(L.LedgerError):
            L.validate_record(dict(rec, env="not-a-dict"))

    def test_load_slice_spellings(self, tmp_path):
        """jsonl file, run directory, and single-record .json all load."""
        jsonl = tmp_path / "ledger.jsonl"
        _write_ledger(jsonl, [100.0, 200.0])
        assert len(L.load_slice(str(jsonl))) == 2
        run_dir = tmp_path / "run-deadbeef"
        run_dir.mkdir()
        _write_ledger(run_dir / L.LEDGER_FILENAME, [300.0])
        assert len(L.load_slice(str(run_dir))) == 1
        single = tmp_path / "BASELINE.json"
        single.write_text(json.dumps(_record(400.0)))
        [loaded] = L.load_slice(str(single))
        assert loaded["probes_per_second"] == 400.0

    def test_metric_value_reads_top_level_and_metrics_dict(self):
        assert L.metric_value(_record(55.0), "probes_per_second") == 55.0
        bench = {"metrics": {"overhead": 0.07}}
        assert L.metric_value(bench, "overhead") == 0.07
        assert L.metric_value(bench, "missing") is None


class TestCompare:
    def test_clear_regression(self):
        result = L.compare([100.0] * 5, [60.0] * 5, threshold=0.15)
        assert result.verdict == "regression"
        assert result.regressed
        assert result.asserted
        assert result.change == pytest.approx(0.4)

    def test_clear_improvement(self):
        result = L.compare([100.0] * 5, [200.0] * 5, threshold=0.15)
        assert result.verdict == "improvement"
        assert not result.regressed

    def test_within_budget_is_ok(self):
        result = L.compare([100.0] * 5, [95.0] * 5, threshold=0.15)
        assert result.verdict == "ok"
        assert not result.regressed

    def test_noise_moots_the_assertion(self):
        """A 40% drop on a machine whose identical baseline runs spread
        60% is a recorded observation, not a confirmed regression."""
        baseline = [100.0, 160.0, 100.0, 160.0, 100.0]
        result = L.compare(baseline, [60.0] * 5, threshold=0.15)
        assert result.verdict == "noise-mooted"
        assert not result.regressed
        assert not result.asserted
        assert result.noise == pytest.approx(0.6)

    def test_noise_floor_gates_too(self):
        result = L.compare([100.0] * 5, [70.0] * 5, threshold=0.15, noise_floor=0.5)
        assert result.verdict == "noise-mooted"

    def test_lower_is_better_direction(self):
        slower = L.compare([10.0] * 3, [15.0] * 3, metric="wall_seconds")
        assert slower.lower_is_better
        assert slower.verdict == "regression"
        faster = L.compare([10.0] * 3, [5.0] * 3, metric="wall_seconds")
        assert faster.verdict == "improvement"

    def test_pair_ratios_align_recent_tail(self):
        # Older baseline samples fall away: only the last two pair up.
        assert L.pair_ratios([999.0, 100.0, 200.0], [50.0, 100.0]) == [0.5, 0.5]

    def test_compare_records_folds_declared_noise(self):
        """A committed baseline measured on a noisy box carries its own
        error bar into every later comparison against it."""
        baseline = [_record(100.0, noise=0.5)]
        candidate = [_record(70.0)]
        result = L.compare_records(baseline, candidate, threshold=0.15)
        assert result.noise == pytest.approx(0.5)
        assert result.verdict == "noise-mooted"
        confirmed = L.compare_records(baseline, [_record(30.0)], threshold=0.15)
        assert confirmed.verdict == "regression"


class TestObsCli:
    def test_regress_exit_codes(self, tmp_path, capsys):
        base = _write_ledger(tmp_path / "base.jsonl", [100.0] * 3)
        slow = _write_ledger(tmp_path / "slow.jsonl", [50.0] * 3)
        same = _write_ledger(tmp_path / "same.jsonl", [101.0] * 3)
        assert main(["obs", "regress", base, slow]) == 1
        assert "REGRESSION" in capsys.readouterr().out
        assert main(["obs", "regress", base, same]) == 0
        assert "ok: within budget" in capsys.readouterr().out
        # The same slowdown under a --noise floor wider than the change
        # is mooted: recorded, exit 0.
        assert main(["obs", "regress", base, slow, "--noise", "0.8"]) == 0
        assert "noise-mooted" in capsys.readouterr().out

    def test_regress_json_output(self, tmp_path):
        base = _write_ledger(tmp_path / "base.jsonl", [100.0] * 3)
        slow = _write_ledger(tmp_path / "slow.jsonl", [50.0] * 3)
        out = tmp_path / "verdict.json"
        assert main(["obs", "regress", base, slow, "--json", str(out)]) == 1
        verdict = json.loads(out.read_text())
        assert verdict["verdict"] == "regression"
        assert verdict["median_ratio"] == pytest.approx(0.5)

    def test_regress_missing_metric_is_usage_error(self, tmp_path):
        base = _write_ledger(tmp_path / "base.jsonl", [100.0])
        assert main(["obs", "regress", base, base, "--metric", "nope"]) == 2

    def test_history_renders_trend_tables(self, tmp_path, capsys):
        ledger = _write_ledger(tmp_path / "ledger.jsonl", [100.0, 120.0, 140.0])
        assert main(["obs", "history", ledger]) == 0
        out = capsys.readouterr().out
        assert "Performance ledger history (3 record(s))" in out
        assert "probes_per_second" in out and "wall_seconds" in out
        assert "| # | when (UTC) |" in out

    def test_history_json_and_filters(self, tmp_path):
        ledger = _write_ledger(tmp_path / "ledger.jsonl", [100.0, 120.0, 140.0])
        out = tmp_path / "history.json"
        assert (
            main(
                [
                    "obs", "history", ledger,
                    "--metric", "probes_per_second",
                    "--last", "2", "--json", str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert list(payload["metrics"]) == ["probes_per_second"]
        rows = payload["metrics"]["probes_per_second"]["rows"]
        assert [row["value"] for row in rows] == [120.0, 140.0]

    def test_history_missing_ledger_is_usage_error(self, tmp_path, capsys):
        assert main(["obs", "history", str(tmp_path / "absent.jsonl")]) == 2
        assert "obs history failed" in capsys.readouterr().err


class TestLedgerRunIntegration:
    BASE = ["run", "--scale", "0.002", "--seed", "5", "--artifact", "table6"]

    def test_run_appends_exactly_one_wellformed_record(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main([*self.BASE, "--ledger", str(ledger)]) == 0
        assert "ledger: record appended" in capsys.readouterr().out
        [record] = L.read_ledger(str(ledger))
        L.validate_record(record)
        assert record["kind"] == "run"
        assert record["scale"] == 0.002
        assert record["seed"] == 5
        assert record["executor"] == "SerialExecutor"
        assert record["probes"] > 0
        assert record["probes_per_second"] > 0
        assert record["wall_seconds"] > 0
        assert record["wall_seconds"] >= record["probe_wall_seconds"] * 0.5
        assert record["counters"]["dns.resolver.queries"] > 0
        assert record["env"]["cpus"] >= 1

    def test_identical_reruns_do_not_fire_the_gate(self, tmp_path):
        """Two runs of the same config differ only by machine noise; with
        the documented --noise floor for this container the gate must
        stay quiet (acceptance: no false positives on identical configs)."""
        ledger = tmp_path / "ledger.jsonl"
        assert main([*self.BASE, "--ledger", str(ledger)]) == 0
        assert main([*self.BASE, "--ledger", str(ledger)]) == 0
        assert len(L.read_ledger(str(ledger))) == 2
        assert (
            main(["obs", "regress", str(ledger), str(ledger), "--noise", "0.5"])
            == 0
        )

    def test_injected_slowdown_is_detected(self, tmp_path, monkeypatch):
        """A sleep instrumented into the per-probe hot path must fire the
        gate even through the 0.5 noise floor used on this container."""
        from time import sleep

        from repro.exec.engine import ProbeExecutor

        base = tmp_path / "base.jsonl"
        cand = tmp_path / "cand.jsonl"
        assert main([*self.BASE, "--ledger", str(base)]) == 0

        real = ProbeExecutor._detect_with_retry

        def slowed(self, ctx, task, metrics):
            sleep(0.004)
            return real(self, ctx, task, metrics)

        monkeypatch.setattr(ProbeExecutor, "_detect_with_retry", slowed)
        assert main([*self.BASE, "--ledger", str(cand)]) == 0
        result = L.compare_records(
            L.read_ledger(str(base)), L.read_ledger(str(cand)),
            threshold=0.15, noise_floor=0.5,
        )
        assert result.verdict == "regression"
        assert (
            main(["obs", "regress", str(base), str(cand), "--noise", "0.5"])
            == 1
        )

    def test_ledger_leaves_trace_bytes_unchanged(self, tmp_path):
        """The ledger observes; it must not perturb the deterministic
        artifacts (trace bytes identical with the ledger on or off)."""
        plain = tmp_path / "plain.jsonl"
        with_ledger = tmp_path / "ledgered.jsonl"
        assert main([*self.BASE, "--trace", str(plain)]) == 0
        assert (
            main(
                [
                    *self.BASE,
                    "--trace", str(with_ledger),
                    "--ledger", str(tmp_path / "ledger.jsonl"),
                ]
            )
            == 0
        )
        assert plain.read_bytes() == with_ledger.read_bytes()

    def test_perf_run_stages_join_profile_json(self, tmp_path):
        """Acceptance: a ``run --perf`` ledger record embeds per-stage
        wall attribution identical to what ``trace profile --json``
        reports for the same artifacts."""
        trace = tmp_path / "trace.jsonl"
        perf = tmp_path / "perf"
        ledger = tmp_path / "ledger.jsonl"
        profile_json = tmp_path / "profile.json"
        assert (
            main(
                [
                    "run", "--scale", "0.02", "--seed", "20211011",
                    "--artifact", "table6",
                    "--trace", str(trace),
                    "--perf", str(perf),
                    "--ledger", str(ledger),
                ]
            )
            == 0
        )
        [record] = L.read_ledger(str(ledger))
        assert record["stages"], "profiled run record is missing stage rows"
        assert (
            main(
                [
                    "trace", "profile", str(trace),
                    "--perf", str(perf),
                    "--json", str(profile_json),
                ]
            )
            == 0
        )
        profile = json.loads(profile_json.read_text())
        assert record["stages"] == profile["stages"]
        wall_total = sum(row["wall"] for row in record["stages"])
        assert wall_total > 0
