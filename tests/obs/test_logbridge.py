"""Tests for the stdlib-logging bridge."""

from __future__ import annotations

import datetime as _dt
import io
import logging

import pytest

from repro.obs import Tracer, attach_trace_handler, configure_logging

T0 = _dt.datetime(2021, 10, 11, tzinfo=_dt.timezone.utc)


@pytest.fixture
def clean_logger():
    """An isolated logger subtree that tests can mutate freely."""
    name = "repro._logbridge_test"
    logger = logging.getLogger(name)
    yield name, logger
    logger.handlers.clear()
    logger.setLevel(logging.NOTSET)


def test_records_become_virtual_time_events(clean_logger):
    name, logger = clean_logger
    tracer = Tracer(enabled=True, clock=lambda: T0)
    attach_trace_handler(tracer, logger_name=name)

    logger.info("stage %s: %d probes", "initial", 42)

    events = tracer.events()
    assert len(events) == 1
    event = events[0]
    assert event.name == "log.info"
    assert event.attrs["message"] == "stage initial: 42 probes"
    assert event.attrs["logger"] == name
    # Stamped with virtual time, never the record's wall-clock `created`.
    assert event.vt == T0


def test_disabled_tracer_attaches_nothing(clean_logger):
    name, logger = clean_logger
    tracer = Tracer(enabled=False)
    assert attach_trace_handler(tracer, logger_name=name) is None
    logger.warning("nobody listening")
    assert tracer.events() == []


def test_configure_logging_respects_level(clean_logger):
    name, logger = clean_logger
    stream = io.StringIO()
    configure_logging("WARNING", stream=stream, logger_name=name)
    # The bridge lowers the logger for its own sake; the console handler
    # must keep filtering at the user's chosen level.
    attach_trace_handler(Tracer(enabled=True, clock=lambda: T0), logger_name=name)
    logger.info("too quiet for the console")
    logger.warning("loud enough")
    text = stream.getvalue()
    assert "loud enough" in text
    assert "too quiet" not in text
