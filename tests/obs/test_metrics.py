"""Unit tests for the metrics registry."""

from __future__ import annotations

from repro.obs import Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_keyed_increments(self):
        counter = Counter("smtp.replies")
        counter.inc("250")
        counter.inc("250")
        counter.inc("550", amount=3)
        assert counter.total == 5
        assert counter.by_key() == {"250": 2.0, "550": 3.0}

    def test_unkeyed_increments(self):
        counter = Counter("exec.probes")
        counter.inc(amount=7)
        assert counter.total == 7
        assert counter.to_dict() == {"total": 7.0}


class TestHistogram:
    def test_percentiles_are_exact(self):
        histogram = Histogram("dns.queries_per_probe")
        for value in [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]:
            histogram.observe(float(value))
        assert histogram.percentile(0) == 1.0
        # Nearest-rank: rank = round(0.5 * 9) = 4 (banker's rounding).
        assert histogram.percentile(50) == 5.0
        assert histogram.percentile(100) == 10.0
        d = histogram.to_dict()
        assert d["count"] == 10
        assert d["min"] == 1.0 and d["max"] == 10.0
        assert d["mean"] == 5.5

    def test_empty_histogram(self):
        histogram = Histogram("empty")
        assert histogram.percentile(50) == 0.0
        assert histogram.to_dict() == {"count": 0}


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.gauge("g") is registry.gauge("g")

    def test_to_dict_is_sorted_and_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("b").inc("y")
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        registry.gauge("g").set(2.5)
        d = registry.to_dict()
        assert list(d["counters"]) == ["a", "b"]
        assert d["gauges"]["g"] == {"value": 2.5}
        assert d["histograms"]["h"]["count"] == 1

    def test_render_markdown_has_counter_and_histogram_tables(self):
        registry = MetricsRegistry()
        registry.counter("smtp.replies").inc("250")
        registry.histogram("exec.backoff_seconds").observe(60.0)
        text = registry.render_markdown()
        assert "| counter | total | top keys |" in text
        assert "smtp.replies" in text and "250=1" in text
        assert "| histogram | count |" in text
        assert "exec.backoff_seconds" in text
