"""The perf sideband must never change a canonical byte.

``--perf`` records wall-clock span timings and resource samples into a
*separate* directory; the contract (DESIGN.md, "Performance telemetry
sideband") is that turning it on changes nothing the determinism suite
byte-compares: the canonical trace, the exported CSVs, and the report
(modulo the report's pre-existing wall-clock columns, which differ
between *any* two runs, perf or not).

The second half of the contract is that the sideband itself is useful:
every span/task/stage record joins 1:1 against the canonical trace by
span id, for the serial and the process-sharded executor alike, and the
merged stream's role order is deterministic.
"""

from __future__ import annotations

import json
import os
import re
from types import SimpleNamespace

import pytest

from repro.analysis.export import export_all
from repro.analysis.report import generate_report
from repro.api import RunConfig
from repro.obs import Observation, PerfRecorder
from repro.obs.perf import (
    META_FILE,
    SAMPLE_STREAM,
    SPAN_STREAM,
    load_perf_dir,
    simulation_counters,
)
from repro.simulation import Simulation

SCALE = 0.02
SEED = 20211011
WORKERS = 2


def _csv_bytes(directory):
    return {
        name: (directory / name).read_bytes()
        for name in sorted(os.listdir(directory))
    }


def _run(root, *, executor, workers, perf):
    perf_dir = str(root / "perf") if perf else None
    config = RunConfig(
        scale=SCALE, seed=SEED, executor=executor, workers=workers,
        trace=True, perf=perf_dir,
    )
    obs = Observation(trace=True)
    if perf_dir:
        obs.attach_perf(PerfRecorder(perf_dir, sample_interval=0.05))
    sim = Simulation.build(config=config, observation=obs)
    if obs.perf is not None:
        obs.perf.start_sampler(lambda: simulation_counters(sim))
    sim.run()
    trace = root / "trace.jsonl"
    obs.tracer.write_jsonl(str(trace))
    export_all(sim, str(root / "csv"))
    report = generate_report(sim)
    if obs.perf is not None:
        obs.perf.finalize()
    return SimpleNamespace(
        sim=sim,
        trace=trace.read_bytes(),
        csv=_csv_bytes(root / "csv"),
        report=report,
        perf_dir=perf_dir,
    )


@pytest.fixture(scope="module")
def serial_off(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("serial-off"),
                executor="serial", workers=1, perf=False)


@pytest.fixture(scope="module")
def serial_on(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("serial-on"),
                executor="serial", workers=1, perf=True)


@pytest.fixture(scope="module")
def process_off(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("process-off"),
                executor="process", workers=WORKERS, perf=False)


@pytest.fixture(scope="module")
def process_on(tmp_path_factory):
    return _run(tmp_path_factory.mktemp("process-on"),
                executor="process", workers=WORKERS, perf=True)


# -- canonical artifacts are untouched ---------------------------------------


def test_serial_trace_and_csv_bytes_identical(serial_off, serial_on):
    assert serial_on.trace == serial_off.trace
    assert serial_on.csv == serial_off.csv


def test_process_trace_and_csv_bytes_identical(process_off, process_on):
    assert process_on.trace == process_off.trace
    assert process_on.csv == process_off.csv


def test_process_trace_matches_serial(serial_off, process_on):
    # Profiling a process run must not cost executor byte-identity either.
    assert process_on.trace == serial_off.trace


_WALL_CELLS = re.compile(r"\| [\d.]+ \| [\d,]+ \|$")
_WALL_ROWS = re.compile(
    r"^\| exec\.stage_(wall_seconds|probes_per_second) \|.*$"
)


def _mask_wall(report: str) -> str:
    """Blank the report's wall-clock-derived cells.

    The stage table's last two columns (wall s, probes/s) and the
    ``exec.stage_wall_seconds`` / ``exec.stage_probes_per_second``
    histogram rows are wall-clock measurements and differ between any
    two runs of the same config — with or without perf.  Everything
    else in the report is deterministic and compared exactly.
    """
    out = []
    for line in report.splitlines():
        if _WALL_ROWS.match(line):
            out.append(_WALL_ROWS.sub(r"| exec.stage_\1 | MASKED |", line))
        else:
            out.append(_WALL_CELLS.sub("| WALL | RATE |", line))
    return "\n".join(out)


def test_serial_report_identical_modulo_wall_columns(serial_off, serial_on):
    assert _mask_wall(serial_on.report) == _mask_wall(serial_off.report)


def test_process_report_identical_modulo_wall_columns(process_off, process_on):
    assert _mask_wall(process_on.report) == _mask_wall(process_off.report)


def test_report_cache_counters_present_and_perf_independent(
    serial_off, serial_on
):
    # The "World cache efficiency" section renders deterministic counts
    # with or without --perf, byte-for-byte.
    def section(report):
        lines = report.splitlines()
        start = lines.index("### World cache efficiency")
        return lines[start:]

    assert section(serial_off.report) == section(serial_on.report)
    body = "\n".join(section(serial_off.report))
    assert "population.chunk_hits" in body
    assert "dns.resolver.queries" in body


# -- the sideband itself ------------------------------------------------------


def _trace_sids(trace_bytes):
    """(span ids, task scopes, stage scopes) seen in the canonical trace.

    Every span's ``<name>.begin`` event carries its own id in the
    ``span`` field (child events carry the enclosing id, which is also
    in the set), so the set of all non-null ``span`` values is exactly
    the set of span ids.
    """
    spans, tasks, stages = set(), set(), set()
    for line in trace_bytes.decode().splitlines():
        event = json.loads(line)
        if event["span"]:
            spans.add(event["span"])
        if event["name"] == "task.begin":
            tasks.add(event["scope"])
        elif event["name"] == "stage.begin":
            stages.add(event["scope"])
    return spans, tasks, stages


def _perf_sids(perf_dir):
    records, _ = load_perf_dir(perf_dir)
    by_kind = {"span": set(), "task": set(), "stage": set()}
    for record in records:
        by_kind[record.kind].add(record.sid)
    return records, by_kind


@pytest.mark.parametrize("fixture", ["serial_on", "process_on"])
def test_perf_records_join_trace_one_to_one(fixture, request):
    run = request.getfixturevalue(fixture)
    records, by_kind = _perf_sids(run.perf_dir)
    spans, tasks, stages = _trace_sids(run.trace)
    assert by_kind["span"] == spans
    assert by_kind["task"] == tasks
    assert by_kind["stage"] == stages
    # 1:1, not just same sets: one perf record per trace span.
    assert len(records) == len(spans) + len(tasks) + len(by_kind["stage"])
    assert all(record.wall >= 0.0 for record in records)


def test_merged_streams_and_meta_exist(process_on):
    for name in (SPAN_STREAM, SAMPLE_STREAM, META_FILE):
        path = os.path.join(process_on.perf_dir, name)
        assert os.path.exists(path), name
        assert os.path.getsize(path) > 0, name
    # No leftover per-role part files after the merge.
    leftovers = [
        name for name in os.listdir(process_on.perf_dir)
        if name.startswith(("spans-", "samples-"))
    ]
    assert leftovers == []
    meta = json.load(open(os.path.join(process_on.perf_dir, META_FILE)))
    assert meta["roles"][0] == "main"


def test_merge_is_deterministic_across_worker_counts(serial_on, process_on):
    """The same campaign yields the same joinable record set at any width.

    Wall values differ (they are wall clock); the *identity* of the
    stream — which spans exist, keyed by sid — must not depend on how
    many workers ran the probes.
    """
    serial_records, serial_kinds = _perf_sids(serial_on.perf_dir)
    process_records, process_kinds = _perf_sids(process_on.perf_dir)
    assert serial_kinds == process_kinds
    assert len(serial_records) == len(process_records)


def test_merged_role_order_is_canonical(process_on):
    from repro.obs.perf import _role_order

    records, _ = _perf_sids(process_on.perf_dir)
    roles = []
    for record in records:
        if not roles or roles[-1] != record.role:
            roles.append(record.role)
    assert roles == sorted(roles, key=_role_order)
    assert roles[0] == "main"
    assert len(roles) == len(set(roles)) == WORKERS + 1


def test_samples_carry_resources_and_counters(process_on):
    _, samples = load_perf_dir(process_on.perf_dir)
    assert samples
    roles = {sample["role"] for sample in samples}
    assert "main" in roles and len(roles) >= 2
    final = samples[-1]
    assert final["rss_kb"] > 0
    assert "gc" in final
    by_role_last = {sample["role"]: sample for sample in samples}
    shard_counters = next(
        sample["counters"] for role, sample in by_role_last.items()
        if role.startswith("shard")
    )
    assert shard_counters.get("dns.resolver.queries", 0) > 0
    main_counters = by_role_last["main"]["counters"]
    # Ship-volume telemetry is recorded by the parent when profiling.
    assert main_counters.get("exec.ship_payload_bytes", 0) > 0
    assert main_counters.get("exec.ship_result_bytes", 0) > 0
