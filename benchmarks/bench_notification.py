"""Bench: regenerate the Section 7.7 private-notification funnel."""

from conftest import emit

from repro.analysis import build_notification_funnel, render_notification_funnel


def test_notification_funnel(benchmark, sim):
    funnel = benchmark(build_notification_funnel, sim)
    emit(render_notification_funnel(funnel))
    assert funnel.sent == funnel.delivered + funnel.bounced
