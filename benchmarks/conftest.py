"""Shared benchmark fixtures.

One full campaign (scale 0.02 — about 9,000 domains and 4,000 mail
servers) is run once per benchmark session; each bench then measures its
experiment's builder and *emits* the reproduced table/figure rows.
Emitted blocks are printed in the terminal summary (past pytest's fd
capture) and written to ``benchmarks/latest_results.txt`` so the
regenerated artifacts can be diffed against the paper.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
from typing import List

import pytest

from repro.api import RunConfig
from repro.obs import ledger as obs_ledger
from repro.simulation import Simulation

BENCH_SCALE = 0.02
BENCH_SEED = 20211011

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "latest_results.txt"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent
LEDGER_PATH = RESULTS_DIR / obs_ledger.LEDGER_FILENAME

_EMITTED: List[str] = []


@pytest.fixture(scope="session")
def sim():
    simulation = Simulation.build(
        config=RunConfig(scale=BENCH_SCALE, seed=BENCH_SEED)
    )
    simulation.run()
    return simulation


@pytest.fixture(scope="session")
def result(sim):
    return sim.run()


def emit(text: str) -> None:
    """Queue reproduced rows for the end-of-run summary and results file."""
    _EMITTED.append(text)


def available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def env_info() -> dict:
    """Machine provenance stamped uniformly into every BENCH record.

    Bench numbers are meaningless without knowing what ran them; every
    ``BENCH_<name>.json`` carries the core count, Python version, and
    git commit (plus a dirty flag) of the checkout that produced it, so
    a number in the ledger can always be tied back to the code it
    measured.
    """
    info = {"cpus": available_cpus(), "python": platform.python_version()}
    info.update(obs_ledger.git_provenance(str(RESULTS_DIR)))
    return info


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark record to ``BENCH_<name>.json``.

    The same payload is also appended as one compact line to the shared
    ``benchmarks/ledger.jsonl`` so benchmark numbers trend across
    sessions with ``obs history`` / ``obs regress`` alongside campaign
    records.
    """
    path = RESULTS_DIR / f"BENCH_{name}.json"
    record = dict(payload)
    record["env"] = env_info()
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    obs_ledger.append_record(
        str(LEDGER_PATH), obs_ledger.bench_record(name, record)
    )
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced tables and figures")
    for block in _EMITTED:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
    RESULTS_PATH.write_text("\n\n".join(_EMITTED) + "\n")
    terminalreporter.write_line(f"(also written to {RESULTS_PATH})")
