"""Shared benchmark fixtures.

One full campaign (scale 0.02 — about 9,000 domains and 4,000 mail
servers) is run once per benchmark session; each bench then measures its
experiment's builder and *emits* the reproduced table/figure rows.
Emitted blocks are printed in the terminal summary (past pytest's fd
capture) and written to ``benchmarks/latest_results.txt`` so the
regenerated artifacts can be diffed against the paper.
"""

from __future__ import annotations

import json
import pathlib
from typing import List

import pytest

from repro.simulation import Simulation

BENCH_SCALE = 0.02
BENCH_SEED = 20211011

RESULTS_PATH = pathlib.Path(__file__).resolve().parent / "latest_results.txt"
RESULTS_DIR = pathlib.Path(__file__).resolve().parent

_EMITTED: List[str] = []


@pytest.fixture(scope="session")
def sim():
    simulation = Simulation.build(scale=BENCH_SCALE, seed=BENCH_SEED)
    simulation.run()
    return simulation


@pytest.fixture(scope="session")
def result(sim):
    return sim.run()


def emit(text: str) -> None:
    """Queue reproduced rows for the end-of-run summary and results file."""
    _EMITTED.append(text)


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Write a machine-readable benchmark record to ``BENCH_<name>.json``."""
    path = RESULTS_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _EMITTED:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced tables and figures")
    for block in _EMITTED:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
    RESULTS_PATH.write_text("\n\n".join(_EMITTED) + "\n")
    terminalreporter.write_line(f"(also written to {RESULTS_PATH})")
