"""Bench: regenerate Figure 6 (vulnerability rates, first window)."""

from conftest import emit

from repro.analysis import build_figure6, render_figure6


def test_figure6(benchmark, sim):
    figure = benchmark(build_figure6, sim)
    emit(render_figure6(figure))
    assert [s.group for s in figure.series] == [
        "Alexa Top List", "Alexa 1000", "2-Week MX",
    ]
