"""Bench: regenerate Table 4 (initial SPF results breakdown)."""

from conftest import emit

from repro.analysis import build_table4, render_table4


def test_table4(benchmark, sim, result):
    rows = benchmark(build_table4, sim.population, result.initial)
    emit(render_table4(rows))
    combined = rows[-1]
    # Paper shape: ~1 in 6 measured addresses vulnerable.
    assert 0.08 < combined.ips_vulnerable / combined.ips_measured < 0.30
