"""Bench: lazy world construction — memory tracks *touched*, not world size.

The lazy world (PR 6) promises two things this bench measures directly:

- **O(1) construction**: building the population, fleet, geography, and
  network allocates no per-domain or per-server objects, so build wall
  time and peak memory are flat across scales (the paper's world is
  scale 1; the ROADMAP's north star is scale 10 — about 4.4M domains).
- **O(touched) steady state**: after a fixed-size probe sweep, peak
  memory is a function of the probes performed plus the bounded
  regeneration caches — not of the world behind them.  The census
  (prefix indexes + calibration counts) is the one O(world)-time pass,
  paid on first touch and recorded separately; its *memory* is
  O(#chunks).

Each scale's record lands in ``BENCH_world.json``: build and census wall
time, tracemalloc peaks, and touched-vs-total server counts after the
sweep.  The pytest entry point runs scale 0.1 only (the bench suite
stays fast); the standalone form runs the full ladder::

    PYTHONPATH=src python benchmarks/bench_world.py
    PYTHONPATH=src python benchmarks/bench_world.py --scales 1 --budget-mb 256

``--budget-mb`` turns the sweep's tracemalloc peak into a hard gate —
the CI scale smoke job runs under it.
"""

from __future__ import annotations

import argparse
import sys
import time
import tracemalloc

from repro.clock import SimulatedClock
from repro.internet.geo import assign_geography
from repro.internet.mta_fleet import _encode_slot, build_fleet
from repro.internet.population import PopulationConfig, generate_population

BENCH_SEED = 20211011
SCALES = (0.1, 1.0, 10.0)
SWEEP_PROBES = 500


def _measure_scale(scale: float, *, probes: int = SWEEP_PROBES) -> dict:
    """Build a world at ``scale``, sweep ``probes`` addresses, record."""
    tracemalloc.start()
    t0 = time.perf_counter()
    population = generate_population(PopulationConfig(scale=scale, seed=BENCH_SEED))
    fleet = build_fleet(population)
    assign_geography(fleet, seed=BENCH_SEED)
    clock = SimulatedClock()
    network = fleet.build_network(lambda: clock.now, fleet.dns_backend)
    build_seconds = time.perf_counter() - t0
    _, build_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # The census: the one O(world)-time pass, O(#chunks) memory.
    tracemalloc.start()
    t0 = time.perf_counter()
    total_ips = fleet.total_ip_count()
    total_slots = fleet.total_slot_count()
    total_units = fleet.unit_count
    census_seconds = time.perf_counter() - t0
    _, census_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # A fixed-size probe sweep: touch evenly spaced address slots.  Every
    # touch materializes (at most) one unit, its domains, and one server.
    tracemalloc.start()
    t0 = time.perf_counter()
    stride = max(1, total_slots // probes)
    swept = 0
    for slot in range(0, total_slots, stride):
        if swept >= probes:
            break
        network.server_at(_encode_slot(slot))
        swept += 1
    sweep_seconds = time.perf_counter() - t0
    _, sweep_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    return {
        "scale": scale,
        "seed": BENCH_SEED,
        "domains": len(population),
        "total_units": total_units,
        "total_addresses": total_ips,
        "total_slots": total_slots,
        "build_seconds": build_seconds,
        "build_peak_mb": build_peak / 1e6,
        "census_seconds": census_seconds,
        "census_peak_mb": census_peak / 1e6,
        "sweep_probes": swept,
        "sweep_seconds": sweep_seconds,
        "sweep_peak_mb": sweep_peak / 1e6,
        "touched_servers": network.materialized_count,
    }


def _render(records: list) -> str:
    lines = [
        f"Lazy world construction (seed {BENCH_SEED}, "
        f"{SWEEP_PROBES}-address probe sweep):",
        "  scale     domains     servers   build(s)  build(MB)  "
        "census(s)  sweep(MB)  touched/total",
    ]
    for r in records:
        lines.append(
            f"  {r['scale']:>5g}  {r['domains']:>10,}  {r['total_addresses']:>10,}"
            f"  {r['build_seconds']:>8.3f}  {r['build_peak_mb']:>9.1f}"
            f"  {r['census_seconds']:>9.2f}  {r['sweep_peak_mb']:>9.1f}"
            f"  {r['touched_servers']:>7,}/{r['total_addresses']:,}"
        )
    return "\n".join(lines)


def _check(records: list, budget_mb: float = None) -> list:
    """Acceptance: memory grows with touched servers, not world size."""
    failures = []
    for r in records:
        # Construction allocates no per-server objects: a scale-10 world
        # (~4.4M domains) must build in well under the memory one probe
        # round would need eagerly.
        if r["build_peak_mb"] > 50.0:
            failures.append(
                f"scale {r['scale']}: build peak {r['build_peak_mb']:.1f}MB "
                "suggests eager materialization"
            )
        if r["touched_servers"] > r["sweep_probes"] + 1:
            failures.append(
                f"scale {r['scale']}: sweep touched {r['touched_servers']} "
                f"servers for {r['sweep_probes']} probes"
            )
        if budget_mb is not None:
            peak = max(r["build_peak_mb"], r["census_peak_mb"], r["sweep_peak_mb"])
            if peak > budget_mb:
                failures.append(
                    f"scale {r['scale']}: peak {peak:.1f}MB exceeds the "
                    f"{budget_mb:.0f}MB budget"
                )
    if len(records) >= 2:
        small, large = records[0], records[-1]
        world_growth = large["total_addresses"] / max(1, small["total_addresses"])
        sweep_growth = large["sweep_peak_mb"] / max(1e-9, small["sweep_peak_mb"])
        # Same probe count at every scale: the sweep's peak must stay
        # decoupled from the world behind it (generous 8x headroom for
        # cache-geometry effects versus the world's ~100x growth).
        if world_growth >= 10 and sweep_growth > 8.0:
            failures.append(
                f"sweep peak grew {sweep_growth:.1f}x across a "
                f"{world_growth:.0f}x world — memory is tracking world size"
            )
    return failures


def test_world_build_is_lazy(benchmark):
    from conftest import emit, emit_json

    record = benchmark.pedantic(
        lambda: _measure_scale(0.1), rounds=1, iterations=1
    )
    emit(_render([record]))
    emit_json("world", {"records": [record], "partial": "pytest runs scale 0.1 only"})
    failures = _check([record])
    assert not failures, "; ".join(failures)


def main(argv=None) -> int:
    from conftest import emit_json

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scales", type=float, nargs="+", default=list(SCALES),
        help="world scales to measure (default: 0.1 1 10)",
    )
    parser.add_argument(
        "--probes", type=int, default=SWEEP_PROBES,
        help="probe-sweep size per scale",
    )
    parser.add_argument(
        "--budget-mb", type=float, default=None,
        help="fail if any phase's tracemalloc peak exceeds this budget",
    )
    args = parser.parse_args(argv)

    records = []
    for scale in args.scales:
        records.append(_measure_scale(scale, probes=args.probes))
        print(_render(records[-1:]))
    path = emit_json("world", {"records": records})
    print(f"(record written to {path})")
    failures = _check(records, budget_mb=args.budget_mb)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
