"""Bench: trace analysis throughput (parse + summarize events/s).

Captures one canonical trace from a scale-0.02 traced campaign, then
measures the consumption side of the observability layer: parsing the
JSONL back into records, building the :class:`TraceAnalysis` (stages,
span trees, timelines), and rendering the markdown summary plus folded
stacks.  The reported figure is end-to-end events per second over the
best of ``REPS`` runs — the number that decides whether ``trace
summary`` is interactive on a production-scale (millions of events)
trace.

Runnable standalone
(``PYTHONPATH=src python benchmarks/bench_trace_analyze.py``) or under
pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import gc
import sys
import time

from repro.api import RunConfig
from repro.obs import Observation
from repro.obs.analyze import TraceAnalysis
from repro.obs.records import parse_jsonl
from repro.simulation import Simulation

ANALYZE_SCALE = 0.02
ANALYZE_SEED = 20211011
REPS = 3


def _capture_trace() -> str:
    """One traced campaign run; returns the canonical JSONL text."""
    observation = Observation(trace=True)
    sim = Simulation.build(
        config=RunConfig(scale=ANALYZE_SCALE, seed=ANALYZE_SEED),
        observation=observation,
    )
    sim.run()
    return observation.tracer.export_jsonl()


def _measure(text: str) -> dict:
    """Parse + analyze + render once, timing each phase."""
    gc.collect()
    started = time.perf_counter()
    events = parse_jsonl(text)
    parsed = time.perf_counter()
    analysis = TraceAnalysis(events)
    analyzed = time.perf_counter()
    summary = analysis.render_markdown()
    folded = analysis.folded_stacks()
    rendered = time.perf_counter()
    assert summary and folded  # the work must not be dead-code eliminated
    total = rendered - started
    return {
        "events": len(events),
        "parse_seconds": parsed - started,
        "analyze_seconds": analyzed - parsed,
        "render_seconds": rendered - analyzed,
        "total_seconds": total,
        "events_per_second": len(events) / max(total, 1e-9),
    }


def _best_of(text: str, reps: int = REPS) -> dict:
    _measure(text)  # warm-up: imports, allocator pools, branch caches
    best = _measure(text)
    for _ in range(reps - 1):
        candidate = _measure(text)
        if candidate["total_seconds"] < best["total_seconds"]:
            best = candidate
    return best


def _record(best: dict) -> dict:
    """The machine-readable payload behind ``BENCH_trace_analyze.json``."""
    return {
        "scale": ANALYZE_SCALE,
        "seed": ANALYZE_SEED,
        "reps": REPS,
        **best,
    }


def _render(best: dict) -> str:
    return (
        f"Trace analysis throughput at scale {ANALYZE_SCALE} "
        f"({best['events']:,} events, seed {ANALYZE_SEED}, best of {REPS}):\n"
        f"  parse             {best['parse_seconds']:8.3f}s\n"
        f"  analyze           {best['analyze_seconds']:8.3f}s\n"
        f"  render            {best['render_seconds']:8.3f}s\n"
        f"  end-to-end        {best['total_seconds']:8.3f}s  "
        f"{best['events_per_second']:10,.0f} events/s"
    )


def test_trace_analyze_throughput(benchmark):
    from conftest import emit, emit_json

    text = _capture_trace()
    best = benchmark.pedantic(_best_of, args=(text,), rounds=1, iterations=1)
    emit(_render(best))
    emit_json("trace_analyze", _record(best))
    assert best["events"] > 10_000
    assert best["events_per_second"] > 0


def main() -> int:
    from conftest import emit_json

    text = _capture_trace()
    best = _best_of(text)
    print(_render(best))
    path = emit_json("trace_analyze", _record(best))
    print(f"(record written to {path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
