"""Bench: regenerate Table 7 (SPF macro-expansion behaviors by IP)."""

from conftest import emit

from repro.analysis import build_table7, render_table7
from repro.core.fingerprint import ExpansionBehavior


def test_table7(benchmark, result):
    table = benchmark(build_table7, result.initial)
    emit(render_table7(table))
    assert table.behavior_counts[ExpansionBehavior.VULNERABLE_LIBSPF2] > 0
