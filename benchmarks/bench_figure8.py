"""Bench: regenerate Figure 8 (Alexa Top 1000 over time)."""

from conftest import emit

from repro.analysis import build_figure8, render_figure8


def test_figure8(benchmark, sim):
    figure = benchmark(build_figure8, sim)
    emit(render_figure8(figure))
    assert figure.initially_vulnerable >= 0
