"""Bench: regenerate Table 6 (package-manager patch timeline)."""

from conftest import emit

from repro.analysis import build_table6, render_table6


def test_table6(benchmark):
    rows = benchmark(build_table6)
    emit(render_table6(rows))
    by_name = {r.manager: r for r in rows}
    # Recorded history reproduces exactly.
    assert by_name["Debian"].days_33912 == 1
    assert by_name["Ubuntu"].days_33912 is None
