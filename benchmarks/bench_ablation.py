"""Ablation benches for the design choices DESIGN.md calls out.

1. **Unique per-test labels** (Section 5.1): without them, recursive
   resolver caches absorb repeat SPF lookups and the measurement goes
   blind after the first probe.
2. **The BlankMsg fallback** (Section 5.1): NoMsg alone misses every
   server that defers SPF validation until a message has been received —
   the majority of measurable servers.
3. **The inference rules** (Section 7.6): without the vulnerable-before /
   patched-after rules, rounds with missing results lose status coverage.
"""

from conftest import emit

from repro.clock import SimulatedClock
from repro.core.detector import DetectionOutcome, ProbeMethod
from repro.dns import CachingResolver, Message, Name, RRType, SpfTestResponder


def test_ablation_unique_labels(benchmark):
    """Reusing one MAIL FROM domain lets the cache absorb every repeat
    policy fetch; unique labels guarantee one server-visible query each."""
    def run():
        clock = SimulatedClock()
        responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
        resolver = CachingResolver(clock=lambda: clock.now)
        resolver.register("spf-test.dns-lab.org", responder)

        def fetch(domain):
            resolver.query(
                Message.make_query(Name.from_text(domain), RRType.TXT),
                now=clock.now,
            )

        probes = 25
        for i in range(probes):
            fetch(f"id{i:04d}.s1.spf-test.dns-lab.org")  # unique labels
        unique_seen = len(responder.log)
        responder.log.clear()
        for _ in range(probes):
            fetch("fixed.s1.spf-test.dns-lab.org")  # one reused label
        reused_seen = len(responder.log)
        return probes, unique_seen, reused_seen

    probes, unique_seen, reused_seen = benchmark(run)
    emit(
        "Ablation 1 — unique test labels vs a reused label "
        f"({probes} probes):\n"
        f"  unique labels: {unique_seen} queries reached the measurement server\n"
        f"  reused label:  {reused_seen} query(ies) reached it (cache ate the rest)"
    )
    assert unique_seen == probes
    assert reused_seen == 1


def test_ablation_blankmsg_fallback(benchmark, result):
    """How much of the measured population only BlankMsg can reach."""
    def analyze():
        nomsg_only = blankmsg_added = 0
        for record in result.initial.ip_records.values():
            nomsg = record.result.method_outcomes.get(ProbeMethod.NOMSG)
            blankmsg = record.result.method_outcomes.get(ProbeMethod.BLANKMSG)
            if nomsg is not None and nomsg.spf_measured:
                nomsg_only += 1
            elif blankmsg is not None and blankmsg.spf_measured:
                blankmsg_added += 1
        return nomsg_only, blankmsg_added

    nomsg_only, blankmsg_added = benchmark(analyze)
    total = nomsg_only + blankmsg_added
    emit(
        "Ablation 2 — dropping the BlankMsg fallback:\n"
        f"  measured by NoMsg alone:      {nomsg_only}\n"
        f"  additionally via BlankMsg:    {blankmsg_added}\n"
        f"  coverage lost without it:     {100.0 * blankmsg_added / total:.0f}%"
    )
    # Paper Table 3: BlankMsg roughly tripled the measured population.
    assert blankmsg_added > nomsg_only


def test_ablation_inference_rules(benchmark, sim):
    """Status coverage in the last round, with and without inference."""
    engine = sim.inference()

    def analyze():
        summaries = engine.round_summaries_domains()
        last = summaries[-1]
        with_rules = last.measured + last.inferred
        without_rules = last.measured
        return last.total, with_rules, without_rules

    total, with_rules, without_rules = benchmark(analyze)
    emit(
        "Ablation 3 — dropping the inference rules (final round, "
        f"{total} domains):\n"
        f"  conclusive with rules:    {with_rules}\n"
        f"  conclusive without rules: {without_rules}"
    )
    assert with_rules >= without_rules
