"""Bench: the perf sideband must cost under 5% wall overhead.

``--perf`` hangs a write-only sink off the tracer, so every span/task/
stage boundary pays one ``perf_counter()`` call plus a buffered record
append, and a daemon thread samples RSS/GC/counters twice a second.
The sideband's whole value proposition is that it can stay on during
real campaigns; this bench holds it to that claim.

Protocol: serial executor, tracing enabled on BOTH sides (the sideband
rides the tracer, so the fair baseline is a traced run), perf toggled.
One discarded warm-up, then ``REPS`` baseline/profiled pairs with the
within-pair order alternating (frequency scaling and page-cache warmth
bias whichever run goes second).  The reported overhead is the **median
of the per-pair ratios**: the two runs of a pair execute back to back
and share the machine's momentary state, so a host-level slowdown
inflates both legs and cancels in the ratio, where a min-vs-min
comparison needs at least one of each leg to dodge every noise spike.
The per-leg minima are still recorded for reference.  The measured
window covers ``sim.run()`` plus the perf ``finalize()`` merge, i.e.
everything profiling adds.

**The <5% bound is asserted only when the machine can resolve it**: if
the baseline legs alone spread wider than the budget (max/min - 1 over
identical runs), wall clock on this box cannot distinguish a 1% sideband
from a 5% one and the measurement is recorded, not asserted — the same
honest-numbers policy ``bench_executor.py`` applies to core-count-bound
criteria.  CI's runners are stable enough to keep the assertion live
there; the honest numbers land in ``BENCH_perf.json`` with the
container's core count, Python version, and the measured noise spread.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_perf.py``)
or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import gc
import shutil
import sys
import tempfile
import warnings
from time import perf_counter

from repro.api import RunConfig
from repro.obs import Observation, PerfRecorder
from repro.obs import ledger as obs_ledger
from repro.obs.perf import simulation_counters

from repro.simulation import Simulation

PERF_SCALE = 0.02
PERF_SEED = 20211011
REPS = 5
MAX_OVERHEAD = 0.05


def _run(perf_dir) -> dict:
    """One traced campaign; ``perf_dir`` toggles the sideband."""
    gc.collect()
    config = RunConfig(
        scale=PERF_SCALE, seed=PERF_SEED, executor="serial",
        trace=True, perf=perf_dir,
    )
    obs = Observation(trace=True)
    if perf_dir:
        obs.attach_perf(PerfRecorder(perf_dir))
    sim = Simulation.build(config=config, observation=obs)
    if obs.perf is not None:
        obs.perf.start_sampler(lambda: simulation_counters(sim))
    started = perf_counter()
    sim.run()
    summary = obs.perf.finalize() if obs.perf is not None else None
    wall = perf_counter() - started
    return {
        "wall": wall,
        "events": len(obs.tracer.events()),
        "records": summary["records"] if summary else 0,
        "samples": summary["samples"] if summary else 0,
    }


def _compare(scratch: str) -> dict:
    _run(None)  # warm-up, discarded
    baseline = []
    profiled = []
    for rep in range(REPS):
        legs = ["baseline", "profiled"]
        if rep % 2:
            legs.reverse()
        for leg in legs:
            if leg == "baseline":
                baseline.append(_run(None))
            else:
                perf_dir = f"{scratch}/perf-{rep}"
                profiled.append(_run(perf_dir))
                shutil.rmtree(perf_dir)
    # The pair-ratio protocol lives in repro.obs.ledger now (``obs
    # regress`` uses the same call); the bench keeps only its measurement
    # loop and translates the ComparisonResult back into its record shape.
    result = obs_ledger.compare(
        [run["wall"] for run in baseline],
        [run["wall"] for run in profiled],
        metric="wall_seconds",
        threshold=MAX_OVERHEAD,
    )
    return {
        "scale": PERF_SCALE,
        "seed": PERF_SEED,
        "reps": REPS,
        "trace_events": profiled[-1]["events"],
        "span_records": profiled[-1]["records"],
        "samples": profiled[-1]["samples"],
        "baseline_wall_seconds": min(run["wall"] for run in baseline),
        "profiled_wall_seconds": min(run["wall"] for run in profiled),
        "pair_ratios": result.pair_ratios,
        "overhead": result.change,
        "max_overhead": MAX_OVERHEAD,
        # The spread of identical baseline runs: the machine's own wall
        # noise.  When it exceeds the budget, the assertion is moot.
        "baseline_noise": result.noise,
        "overhead_asserted": result.asserted,
        "verdict": result.verdict,
    }


def _render(record: dict) -> str:
    return (
        f"Perf sideband overhead (scale {record['scale']}, serial, "
        f"median of {record['reps']} alternating pairs):\n"
        f"  traced baseline   {record['baseline_wall_seconds']:8.3f}s (best)\n"
        f"  with --perf       {record['profiled_wall_seconds']:8.3f}s (best)  "
        f"({record['span_records']:,} span records, "
        f"{record['samples']} samples)\n"
        f"  overhead          {record['overhead']:+8.1%}  "
        f"(budget {record['max_overhead']:.0%}; baseline noise "
        f"{record['baseline_noise']:.1%}"
        + (
            ")"
            if record["overhead_asserted"]
            else " exceeds the budget: recorded, not asserted)"
        )
    )


def _check(record: dict) -> list:
    failures = []
    if record["overhead_asserted"] and (
        record["overhead"] > record["max_overhead"]
    ):
        failures.append(
            f"perf overhead {record['overhead']:+.1%} exceeds the "
            f"{record['max_overhead']:.0%} budget"
        )
    return failures


def _warn_if_unasserted(record: dict) -> None:
    """A silent pass is worse than a loud one: when noise moots the
    budget, say so where it cannot be missed (the pytest warnings
    summary, or stderr standalone) instead of quietly going green."""
    if record["overhead_asserted"]:
        return
    warnings.warn(
        f"perf overhead budget NOT asserted: baseline noise "
        f"{record['baseline_noise']:.1%} exceeds the "
        f"{record['max_overhead']:.0%} budget on this machine — the "
        f"measured {record['overhead']:+.1%} overhead is recorded in the "
        f"ledger, not asserted",
        stacklevel=2,
    )


def test_perf_sideband_overhead_under_budget(benchmark, tmp_path):
    from conftest import emit, emit_json

    record = benchmark.pedantic(
        _compare, args=(str(tmp_path),), rounds=1, iterations=1
    )
    emit(_render(record))
    emit_json("perf", record)
    _warn_if_unasserted(record)
    assert record["span_records"] > 10_000
    assert record["samples"] > 0
    failures = _check(record)
    assert not failures, "; ".join(failures)


def main() -> int:
    from conftest import emit_json

    scratch = tempfile.mkdtemp(prefix="bench-perf-")
    try:
        record = _compare(scratch)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    print(_render(record))
    path = emit_json("perf", record)
    print(f"(record written to {path})")
    with warnings.catch_warnings():
        warnings.simplefilter("always")
        _warn_if_unasserted(record)
    failures = _check(record)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
