"""Bench: regenerate Figure 7 (vulnerability rates, full period)."""

from conftest import emit

from repro.analysis import build_figure7, render_figure7


def test_figure7(benchmark, sim):
    figure = benchmark(build_figure7, sim)
    emit(render_figure7(figure))
    # Paper: just over 80% of inferable domains still vulnerable at end.
    assert 0.6 < figure.final_vulnerable_fraction() < 0.95
