"""Bench: regenerate Figure 3 (geographic distribution series)."""

from conftest import emit

from repro.analysis import build_figure3, render_figure3


def test_figure3(benchmark, sim):
    figure = benchmark(build_figure3, sim)
    emit(render_figure3(figure))
    assert figure.cells
