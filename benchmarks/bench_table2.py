"""Bench: regenerate Table 2 (most common TLDs per domain set)."""

from conftest import emit

from repro.analysis import build_table2, render_table2


def test_table2(benchmark, sim):
    rows = benchmark(build_table2, sim.population)
    emit(render_table2(rows))
    assert rows[0].alexa_tld == "com"
