"""Bench: regenerate Figure 4 (vulnerable/patched by site ranking)."""

from conftest import emit

from repro.analysis import build_figure4, render_figure4


def test_figure4(benchmark, sim):
    figure = benchmark(build_figure4, sim)
    emit(render_figure4(figure))
    assert len(figure.alexa) == 20
