"""Bench: regenerate Figure 5 (conclusive results over time)."""

from conftest import emit

from repro.analysis import build_figure5, render_figure5


def test_figure5(benchmark, sim):
    figure = benchmark(build_figure5, sim)
    emit(render_figure5(figure))
    assert len(figure.series) > 20  # 2-day rounds across two windows
