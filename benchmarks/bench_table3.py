"""Bench: regenerate Table 3 (NoMsg/BlankMsg outcomes by domain set)."""

from conftest import emit

from repro.analysis import build_table3, render_table3


def test_table3(benchmark, sim, result):
    columns = benchmark(build_table3, sim.population, result.initial)
    emit(render_table3(columns))
    assert [c.group for c in columns] == [
        "Alexa Top List", "2-Week MX", "Top Email Providers",
    ]
