"""Bench: regenerate Table 1 (overlap in domain measurement sets)."""

from conftest import emit

from repro.analysis import build_table1, render_table1


def test_table1(benchmark, sim):
    rows = benchmark(build_table1, sim.population)
    emit(render_table1(rows))
    assert len(rows) == 3
