"""Bench: regenerate Table 5 (best/worst TLD patch rates)."""

from conftest import emit

from repro.analysis import build_table5, render_table5


def test_table5(benchmark, sim):
    table = benchmark(build_table5, sim)
    emit(render_table5(table))
    assert table.best or table.worst
