"""Bench: regenerate Figure 2 (final patched/vulnerable distribution)."""

from conftest import emit

from repro.analysis import build_figure2, render_figure2


def test_figure2(benchmark, sim):
    rows = benchmark(build_figure2, sim)
    emit(render_figure2(rows))
    all_row = rows[0]
    # Paper shape: most initially vulnerable domains remain vulnerable.
    assert all_row.vulnerable > all_row.patched
