"""Bench: the end-to-end campaign itself (build + four-month run).

Measured once (pedantic single round) at a small scale so the benchmark
suite stays fast; the analysis benches reuse the session-scoped large run.
"""

from conftest import emit

from repro.api import RunConfig
from repro.simulation import Simulation


def test_full_campaign_small_scale(benchmark):
    def run():
        sim = Simulation.build(config=RunConfig(scale=0.003, seed=1))
        return sim, sim.run()

    sim, result = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "Full campaign at scale 0.003: "
        f"{len(sim.population):,} domains, "
        f"{len(result.initial.ip_records):,} addresses probed, "
        f"{len(result.initial.vulnerable_ips()):,} vulnerable, "
        f"{len(result.rounds)} longitudinal rounds"
    )
    assert result.rounds
