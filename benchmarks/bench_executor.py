"""Bench: serial vs. sharded vs. process-sharded probe execution.

Runs the full four-month campaign at scale 0.1 under all three
strategies and compares throughput from the executors' own stage
metrics.  Two claims are measured:

- The thread-sharded executor amortizes the shared clock's
  pending-callback scans over event horizons instead of paying one per
  probe, so its probes-per-second must come out at least as high as the
  serial executor's.  The edge is a few percent of total wall time, so
  the comparison uses the standard best-of-N protocol — one discarded
  warm-up run, then the minimum wall time of ``REPS`` interleaved runs
  per strategy — rather than a single noisy pair.  **Asserted only with
  at least two cores**: on a single-core box eight worker threads
  time-share one CPU with the GIL, the few-percent edge sits below the
  machine's run-to-run noise, and repeated measurements land on either
  side of 1.0x — recorded, not asserted, same policy as the process
  criterion below.
- The process-sharded executor escapes the GIL entirely: with four
  worker processes on four available cores it must deliver at least a
  2x probe-throughput speedup over serial.  **This claim is only
  asserted when the machine actually has four cores** — on a smaller
  box (CI containers are often single-core) the run still executes and
  its honest numbers land in ``BENCH_executor.json`` together with the
  measured core count, but four CPU-bound world replicas time-sharing
  one core cannot beat one process and no benchmark should pretend
  otherwise.  The process run is a single rep: each rep pays a full
  per-child world rebuild, which dominates run-to-run noise.

Also doubles as a determinism spot check: all strategies must classify
the same addresses as vulnerable.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_executor.py``)
or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import gc
import os
import sys

from repro.simulation import Simulation

EXEC_SCALE = 0.1
EXEC_SEED = 20211011
EXEC_WORKERS = 8       # thread shards
PROCESS_WORKERS = 4    # worker processes (the paper criterion's core count)
REPS = 3


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _run(executor: str, workers: int):
    gc.collect()
    sim = Simulation.build(
        scale=EXEC_SCALE, seed=EXEC_SEED, executor=executor, workers=workers
    )
    result = sim.run()
    total = sim.campaign.executor.metrics.total()
    sim.campaign.executor.shutdown()
    return result, total


def _compare():
    _run("serial", 1)  # warm-up: imports, allocator pools, branch caches
    serial_result, serial_best = _run("serial", 1)
    sharded_result, sharded_best = _run("sharded", EXEC_WORKERS)
    process_result, process_total = _run("process", PROCESS_WORKERS)
    for name, other in (("sharded", sharded_result), ("process", process_result)):
        assert sorted(serial_result.initial.vulnerable_ips()) == sorted(
            other.initial.vulnerable_ips()
        ), f"serial and {name} runs disagree on vulnerable addresses"
    for _ in range(REPS - 1):
        _, total = _run("sharded", EXEC_WORKERS)
        if total.wall_seconds < sharded_best.wall_seconds:
            sharded_best = total
        _, total = _run("serial", 1)
        if total.wall_seconds < serial_best.wall_seconds:
            serial_best = total
    return serial_best, sharded_best, process_total


def _speedup(total, baseline) -> float:
    return total.probes_per_second / max(baseline.probes_per_second, 1e-9)


def _record(serial_total, sharded_total, process_total) -> dict:
    """The machine-readable payload behind ``BENCH_executor.json``."""
    cpus = _available_cpus()
    return {
        "scale": EXEC_SCALE,
        "seed": EXEC_SEED,
        "workers": EXEC_WORKERS,
        "process_workers": PROCESS_WORKERS,
        "cpus": cpus,
        "reps": REPS,
        "probes": serial_total.probes_attempted,
        "serial": {
            "wall_seconds": serial_total.wall_seconds,
            "probes_per_second": serial_total.probes_per_second,
        },
        "sharded": {
            "wall_seconds": sharded_total.wall_seconds,
            "probes_per_second": sharded_total.probes_per_second,
        },
        "process": {
            "wall_seconds": process_total.wall_seconds,
            "probes_per_second": process_total.probes_per_second,
        },
        "speedup": _speedup(sharded_total, serial_total),
        "process_speedup": _speedup(process_total, serial_total),
        # Both criteria presume the workers actually get cores; record
        # whether this machine could express them.
        "speedup_asserted": cpus >= 2,
        "process_speedup_asserted": cpus >= PROCESS_WORKERS,
    }


def _render(serial_total, sharded_total, process_total) -> str:
    cpus = _available_cpus()
    lines = [
        f"Executor throughput at scale {EXEC_SCALE} "
        f"({serial_total.probes_attempted:,} probes, seed {EXEC_SEED}, "
        f"{cpus} CPU(s), best of {REPS}; process single-rep):",
        f"  serial            {serial_total.wall_seconds:8.2f}s wall  "
        f"{serial_total.probes_per_second:10,.0f} probes/s",
        f"  sharded (x{EXEC_WORKERS})      {sharded_total.wall_seconds:8.2f}s wall  "
        f"{sharded_total.probes_per_second:10,.0f} probes/s  "
        f"({_speedup(sharded_total, serial_total):.2f}x)",
        f"  process (x{PROCESS_WORKERS})      {process_total.wall_seconds:8.2f}s wall  "
        f"{process_total.probes_per_second:10,.0f} probes/s  "
        f"({_speedup(process_total, serial_total):.2f}x)",
    ]
    if cpus < 2:
        lines.append(
            f"  (only {cpus} core(s) available: the sharded>=serial "
            f"criterion needs 2; recorded, not asserted)"
        )
    if cpus < PROCESS_WORKERS:
        lines.append(
            f"  (only {cpus} core(s) available: the >=2x process criterion "
            f"needs {PROCESS_WORKERS}; recorded, not asserted)"
        )
    return "\n".join(lines)


def _check(serial_total, sharded_total, process_total) -> list:
    """The acceptance assertions; returns failure messages (empty = pass)."""
    failures = []
    if _available_cpus() >= 2 and (
        sharded_total.probes_per_second < serial_total.probes_per_second
    ):
        failures.append("sharded throughput fell below serial")
    if _available_cpus() >= PROCESS_WORKERS and (
        _speedup(process_total, serial_total) < 2.0
    ):
        failures.append(
            f"process speedup {_speedup(process_total, serial_total):.2f}x "
            f"< 2x with {_available_cpus()} cores available"
        )
    return failures


def test_sharded_outpaces_serial(benchmark):
    from conftest import emit, emit_json

    serial_total, sharded_total, process_total = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )
    emit(_render(serial_total, sharded_total, process_total))
    emit_json("executor", _record(serial_total, sharded_total, process_total))
    assert sharded_total.probes_attempted == serial_total.probes_attempted
    assert process_total.probes_attempted == serial_total.probes_attempted
    failures = _check(serial_total, sharded_total, process_total)
    assert not failures, "; ".join(failures)


def main() -> int:
    from conftest import emit_json

    serial_total, sharded_total, process_total = _compare()
    print(_render(serial_total, sharded_total, process_total))
    path = emit_json(
        "executor", _record(serial_total, sharded_total, process_total)
    )
    print(f"(record written to {path})")
    failures = _check(serial_total, sharded_total, process_total)
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
