"""Bench: serial vs. sharded probe execution on the same campaign.

Runs the full four-month campaign at scale 0.05 under both strategies
and compares throughput from the executors' own stage metrics.  The
sharded executor amortizes the shared clock's pending-callback scans
over event horizons instead of paying one per probe, so its
probes-per-second must come out at least as high as the serial
executor's (the ISSUE acceptance criterion).  The edge is a few percent
of total wall time at this scale, so the comparison uses the standard
best-of-N protocol — one discarded warm-up run, then the minimum wall
time of ``REPS`` interleaved runs per strategy — rather than a single
noisy pair.  Also doubles as a determinism spot check: both strategies
must classify the same addresses as vulnerable.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_executor.py``)
or under pytest-benchmark with the rest of the bench suite.
"""

from __future__ import annotations

import gc
import sys

from repro.simulation import Simulation

EXEC_SCALE = 0.05
EXEC_SEED = 20211011
EXEC_WORKERS = 8
REPS = 3


def _run(executor: str, workers: int):
    gc.collect()
    sim = Simulation.build(
        scale=EXEC_SCALE, seed=EXEC_SEED, executor=executor, workers=workers
    )
    result = sim.run()
    return result, sim.campaign.executor.metrics.total()


def _compare():
    _run("serial", 1)  # warm-up: imports, allocator pools, branch caches
    serial_result, serial_best = _run("serial", 1)
    sharded_result, sharded_best = _run("sharded", EXEC_WORKERS)
    assert sorted(serial_result.initial.vulnerable_ips()) == sorted(
        sharded_result.initial.vulnerable_ips()
    ), "serial and sharded runs disagree on vulnerable addresses"
    for _ in range(REPS - 1):
        _, total = _run("sharded", EXEC_WORKERS)
        if total.wall_seconds < sharded_best.wall_seconds:
            sharded_best = total
        _, total = _run("serial", 1)
        if total.wall_seconds < serial_best.wall_seconds:
            serial_best = total
    return serial_best, sharded_best


def _record(serial_total, sharded_total) -> dict:
    """The machine-readable payload behind ``BENCH_executor.json``."""
    speedup = sharded_total.probes_per_second / max(
        serial_total.probes_per_second, 1e-9
    )
    return {
        "scale": EXEC_SCALE,
        "seed": EXEC_SEED,
        "workers": EXEC_WORKERS,
        "reps": REPS,
        "probes": serial_total.probes_attempted,
        "serial": {
            "wall_seconds": serial_total.wall_seconds,
            "probes_per_second": serial_total.probes_per_second,
        },
        "sharded": {
            "wall_seconds": sharded_total.wall_seconds,
            "probes_per_second": sharded_total.probes_per_second,
        },
        "speedup": speedup,
    }


def _render(serial_total, sharded_total) -> str:
    speedup = sharded_total.probes_per_second / max(
        serial_total.probes_per_second, 1e-9
    )
    return (
        f"Executor throughput at scale {EXEC_SCALE} "
        f"({serial_total.probes_attempted:,} probes, seed {EXEC_SEED}, "
        f"best of {REPS}):\n"
        f"  serial            {serial_total.wall_seconds:8.2f}s wall  "
        f"{serial_total.probes_per_second:10,.0f} probes/s\n"
        f"  sharded (x{EXEC_WORKERS})      {sharded_total.wall_seconds:8.2f}s wall  "
        f"{sharded_total.probes_per_second:10,.0f} probes/s\n"
        f"  speedup           {speedup:8.2f}x"
    )


def test_sharded_outpaces_serial(benchmark):
    from conftest import emit, emit_json

    serial_total, sharded_total = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )
    emit(_render(serial_total, sharded_total))
    emit_json("executor", _record(serial_total, sharded_total))
    assert sharded_total.probes_attempted == serial_total.probes_attempted
    assert sharded_total.probes_per_second >= serial_total.probes_per_second


def main() -> int:
    from conftest import emit_json

    serial_total, sharded_total = _compare()
    print(_render(serial_total, sharded_total))
    path = emit_json("executor", _record(serial_total, sharded_total))
    print(f"(record written to {path})")
    if sharded_total.probes_per_second < serial_total.probes_per_second:
        print("FAIL: sharded throughput fell below serial")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
