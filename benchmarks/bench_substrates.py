"""Micro-benchmarks for the substrate hot paths.

Not tied to a paper artifact — these quantify the cost of the pieces the
campaign executes hundreds of thousands of times: DNS wire coding, SPF
evaluation, macro expansion (both engines), and a full probe transaction.
"""

import ipaddress

import pytest

from repro.clock import SimulatedClock
from repro.dns import (
    A,
    AuthoritativeServer,
    CachingResolver,
    Message,
    Name,
    RRType,
    SpfTestResponder,
    StubResolver,
    TXT,
    Zone,
)
from repro.dns.wire import from_wire, to_wire
from repro.libspf2.expand import LibSpf2Expander
from repro.smtp import Network, SmtpClient, SmtpServer, SpfStack, SpfTiming, TransactionKind
from repro.spf import SpfEvaluator
from repro.spf.macro import MacroContext, expand_macros


def test_wire_roundtrip(benchmark):
    from repro.dns.rdata import ResourceRecord

    message = Message.make_query(Name.from_text("mail.example.com"), RRType.TXT)
    response = message.make_response()
    response.answers = [
        ResourceRecord(
            name=Name.from_text("mail.example.com"),
            rdata=TXT("v=spf1 a:%{d1r}.x.example a:b.x.example -all"),
        )
    ]
    wire = to_wire(response)
    decoded = benchmark(lambda: from_wire(to_wire(response)))
    assert decoded.answers


def test_rfc_macro_expansion(benchmark):
    ctx = MacroContext(
        sender="user@example.com",
        domain="ab1.s1.spf-test.dns-lab.org",
        client_ip=ipaddress.IPv4Address("198.51.100.7"),
    )
    out = benchmark(expand_macros, "%{d1r}.ab1.s1.spf-test.dns-lab.org", ctx)
    assert out.startswith("ab1.")


def test_libspf2_vulnerable_expansion(benchmark):
    expander = LibSpf2Expander(patched=False)
    out = benchmark(
        expander.expand,
        "%{d1r}.ab1.s1.spf-test.dns-lab.org",
        lambda letter: "ab1.s1.spf-test.dns-lab.org",
    )
    assert out.output.startswith("org.org.")


def test_spf_check_host(benchmark):
    zone = Zone("example.com")
    zone.add("example.com", TXT("v=spf1 a:mail.example.com ip4:192.0.2.0/24 -all"))
    zone.add("mail", A("198.51.100.25"))
    server = AuthoritativeServer([zone])
    resolver = CachingResolver()
    resolver.register("example.com", server)
    evaluator = SpfEvaluator(StubResolver(resolver))
    ip = ipaddress.IPv4Address("198.51.100.25")
    outcome = benchmark(evaluator.check_host, ip, "example.com", "u@example.com")
    assert str(outcome.result) == "pass"


def test_full_probe_transaction(benchmark):
    clock = SimulatedClock()
    responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
    resolver = CachingResolver(clock=lambda: clock.now)
    resolver.register("spf-test.dns-lab.org", responder)
    network = Network(clock=lambda: clock.now)
    network.register(
        SmtpServer(
            "10.0.0.1",
            spf_stacks=[SpfStack.named("vulnerable-libspf2", SpfTiming.ON_MAIL_FROM)],
            resolver=StubResolver(resolver, identity="10.0.0.1", clock=lambda: clock.now),
        )
    )
    client = SmtpClient(network)
    counter = [0]

    def probe():
        counter[0] += 1
        return client.probe(
            "10.0.0.1",
            sender=f"noreply@t{counter[0]}.s1.spf-test.dns-lab.org",
            recipient="postmaster@target.example",
            kind=TransactionKind.NOMSG,
        )

    result = benchmark(probe)
    assert result.replies
