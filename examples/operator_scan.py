#!/usr/bin/env python3
"""An operator's scan: check *your own* mail domains for the vulnerability.

Demonstrates the downstream-facing :class:`SpfVulnerabilityScanner` API —
the productized form of the paper's technique.  An operator stands up the
measurement DNS responder, points the scanner at their domains, and reads
the per-server verdicts.  Zone data for the scanned infrastructure is
authored as standard zone-file text.

Run:  python examples/operator_scan.py
"""

from repro.clock import SimulatedClock
from repro.core import SpfVulnerabilityScanner
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.internet.mta_fleet import PopulationDnsBackend
from repro.smtp import Network, SmtpServer, SpfStack, SpfTiming


def main() -> None:
    clock = SimulatedClock()
    now = lambda: clock.now

    # The scanner's own infrastructure: the special DNS zone that serves
    # macro-bearing SPF policies and logs what each scanned server asks.
    responder = SpfTestResponder(Name.from_text("spf-test.dns-lab.org"))
    resolver = CachingResolver(clock=now)
    resolver.register("spf-test.dns-lab.org", responder)

    # The operator's estate: three mail domains on three servers, one of
    # them still running the vulnerable libSPF2.
    estate_dns = PopulationDnsBackend()
    resolver.register(Name.root(), estate_dns)
    network = Network(clock=now)
    estate = {
        "corp.example": ("10.1.0.1", "patched-libspf2"),
        "shop.example": ("10.1.0.2", "vulnerable-libspf2"),
        "lists.example": ("10.1.0.3", "rfc-compliant"),
    }
    for domain, (ip, behavior) in estate.items():
        estate_dns.set_mx(domain, [(10, f"mx.{domain}")])
        estate_dns.set_a(f"mx.{domain}", [ip])
        network.register(
            SmtpServer(
                ip,
                spf_stacks=[SpfStack.named(behavior, SpfTiming.ON_MAIL_FROM)],
                resolver=StubResolver(resolver, identity=ip, clock=now),
            )
        )

    scanner = SpfVulnerabilityScanner(
        network,
        responder,
        clock=clock,
        resolver=StubResolver(resolver, identity="scanner", clock=now),
    )
    report = scanner.scan_domains(sorted(estate))
    print(report.summary())
    print()
    for domain in report.vulnerable_domains():
        print(f"ACTION REQUIRED: {domain} validates SPF with vulnerable libSPF2")
        print("  -> upgrade libSPF2 (CVE-2021-33912 / CVE-2021-33913) or switch libraries")


if __name__ == "__main__":
    main()
