#!/usr/bin/env python3
"""Using the SPF engine standalone (RFC 7208 over the DNS substrate).

Publishes SPF policies — including macro-bearing ones — in simulated DNS
zones and evaluates ``check_host()`` for various senders and client
addresses, with different macro-expansion behaviors plugged in.

Run:  python examples/spf_engine_demo.py
"""

import ipaddress

from repro.dns import A, AAAA, AuthoritativeServer, CachingResolver, MX, Name, StubResolver, TXT, Zone
from repro.spf import SpfEvaluator, behavior_by_name


def main() -> None:
    # Publish example.com's mail setup and SPF policy.
    zone = Zone("example.com")
    zone.add("example.com", TXT("v=spf1 mx a:relay.example.com ip4:192.0.2.0/28 include:thirdparty.net -all"))
    zone.add("example.com", MX(10, "mail.example.com"))
    zone.add("mail.example.com", A("198.51.100.25"))
    zone.add("mail.example.com", AAAA("2001:db8::25"))
    zone.add("relay.example.com", A("198.51.100.26"))

    third = Zone("thirdparty.net")
    third.add("thirdparty.net", TXT("v=spf1 ip4:203.0.113.0/24 ~all"))

    macro_zone = Zone("macro.example")
    macro_zone.add("macro.example", TXT("v=spf1 exists:%{ir}.%{v}.allow.macro.example -all"))
    macro_zone.add("1.2.0.192.in-addr.allow.macro.example", A("127.0.0.2"))

    server = AuthoritativeServer([zone, third, macro_zone])
    resolver = CachingResolver()
    for origin in ("example.com", "thirdparty.net", "macro.example"):
        resolver.register(origin, server)
    stub = StubResolver(resolver, identity="demo")

    evaluator = SpfEvaluator(stub)
    print("Policy evaluation for example.com:")
    for ip, label in (
        ("198.51.100.25", "the MX itself"),
        ("198.51.100.26", "the relay"),
        ("192.0.2.7", "inside the ip4 block"),
        ("203.0.113.50", "third-party included sender"),
        ("8.8.8.8", "a spoofer"),
    ):
        outcome = evaluator.check_host(
            ipaddress.ip_address(ip), "example.com", "alice@example.com"
        )
        print(f"  {ip:<15} ({label:<28}) -> {outcome}")
    print()

    print("Macro policy (exists:%{ir}.%{v}.allow...) for macro.example:")
    for ip in ("192.0.2.1", "192.0.2.2"):
        outcome = evaluator.check_host(
            ipaddress.ip_address(ip), "macro.example", "bob@macro.example"
        )
        print(f"  {ip:<15} -> {outcome}")
    print()

    print("The same macro policy through broken SPF implementations:")
    for behavior_name in ("rfc-compliant", "no-expansion", "vulnerable-libspf2"):
        evaluator = SpfEvaluator(stub, behavior=behavior_by_name(behavior_name))
        outcome = evaluator.check_host(
            ipaddress.ip_address("192.0.2.1"), "macro.example", "bob@macro.example"
        )
        print(f"  {behavior_name:<22} -> {outcome}")


if __name__ == "__main__":
    main()
