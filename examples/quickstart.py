#!/usr/bin/env python3
"""Quickstart: remotely detect a vulnerable mail server, benignly.

Builds the minimal SPFail setup — a measurement DNS responder, two mail
servers (one running vulnerable libSPF2, one patched), and the probing
client — then shows how the vulnerable server betrays itself purely
through the DNS queries it sends while validating SPF.

Run:  python examples/quickstart.py
"""

from repro.clock import SimulatedClock
from repro.core import LabelAllocator, VulnerabilityDetector
from repro.dns import CachingResolver, Name, SpfTestResponder, StubResolver
from repro.smtp import Network, SmtpClient, SmtpServer, SpfStack, SpfTiming


def main() -> None:
    clock = SimulatedClock()
    now = lambda: clock.now

    # The measurement side: an authoritative DNS server for our test zone
    # that serves the macro-bearing SPF policy and logs every query.
    base = Name.from_text("spf-test.dns-lab.org")
    responder = SpfTestResponder(base)
    resolver = CachingResolver(clock=now)
    resolver.register(base, responder)

    # Two mail servers on a simulated network.  Their SPF validators do
    # real RFC 7208 evaluation over the simulated DNS.
    network = Network(clock=now)
    for ip, behavior in (
        ("203.0.113.10", "vulnerable-libspf2"),
        ("203.0.113.20", "patched-libspf2"),
    ):
        network.register(
            SmtpServer(
                ip,
                spf_stacks=[SpfStack.named(behavior, SpfTiming.ON_MAIL_FROM)],
                resolver=StubResolver(resolver, identity=ip, clock=now),
            )
        )

    # The prober: NoMsg/BlankMsg SMTP transactions with unique labels.
    client = SmtpClient(network)
    labels = LabelAllocator(base)
    detector = VulnerabilityDetector(
        client,
        responder,
        labels,
        wait=lambda seconds: clock.advance_seconds(seconds),
        now=now,
    )

    suite = labels.new_suite()
    for ip in ("203.0.113.10", "203.0.113.20"):
        result = detector.detect(ip, suite)
        print(f"server {ip}: {result.outcome.value}")
        for test_id in result.test_ids:
            for prefix in responder.log.expansion_prefixes(suite, test_id):
                print(f"  observed macro expansion: {prefix}")
        print(f"  behaviors: {sorted(b.value for b in result.behaviors)}")
        print()

    print("The vulnerable server expanded %{d1r} into the duplicated,")
    print("unreversed, untruncated pattern unique to libSPF2's bug —")
    print("detected remotely, without delivering email or causing harm.")


if __name__ == "__main__":
    main()
