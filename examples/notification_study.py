#!/usr/bin/env python3
"""The disclosure and remediation study (paper Sections 6.4, 7.7, 7.8).

Runs the campaign and then drills into *why* servers patched (or didn't):
the private-notification funnel, the package-manager timeline, patch
triggers over the vulnerable population, and the per-TLD patch-rate
outliers.

Run:  python examples/notification_study.py
"""

import collections

from repro.analysis import (
    build_notification_funnel,
    build_table5,
    build_table6,
    render_notification_funnel,
    render_table5,
    render_table6,
)
from repro import api
from repro.internet.patching import PatchTrigger


def main() -> None:
    handle = api.open_run(api.RunConfig(scale=0.02))
    sim = handle.simulation
    handle.run()

    print(render_table6(build_table6()), end="\n\n")
    print(render_notification_funnel(build_notification_funnel(sim)), end="\n\n")
    print(render_table5(build_table5(sim)), end="\n\n")

    triggers = collections.Counter(
        plan.trigger for plan in sim.patch_model.plans() if plan.patches
    )
    print("Why vulnerable hosting units patched:")
    for trigger in PatchTrigger:
        if trigger == PatchTrigger.NONE:
            continue
        print(f"  {trigger.value:<22} {triggers.get(trigger, 0)}")
    never = sum(1 for plan in sim.patch_model.plans() if not plan.patches)
    print(f"  {'never patched':<22} {never}")
    print()

    managers = collections.Counter(
        plan.package_manager
        for plan in sim.patch_model.plans()
        if plan.patches and plan.package_manager
    )
    print("Package managers that delivered those patches:")
    for manager, count in managers.most_common():
        print(f"  {manager:<22} {count}")


if __name__ == "__main__":
    main()
