#!/usr/bin/env python3
"""The full SPFail measurement campaign, end to end (paper Sections 5-7).

Generates a scaled-down synthetic Internet (domain populations, hosting
fleet, geography, patch dynamics), runs the four-month campaign — initial
sweep, two longitudinal windows, private notification, final snapshot —
and prints the reproduction of every headline table and figure.

Run:  python examples/measurement_campaign.py [scale]
      (default scale 0.01 ~ 4,400 domains; the paper's full population is
       scale 1.0)
"""

import sys

from repro.analysis import (
    build_figure2,
    build_figure5,
    build_figure7,
    build_notification_funnel,
    build_table1,
    build_table3,
    build_table4,
    build_table7,
    render_figure2,
    render_figure5,
    render_figure7,
    render_notification_funnel,
    render_table1,
    render_table3,
    render_table4,
    render_table7,
)
from repro import api


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.01
    print(f"Building the synthetic Internet at scale {scale} ...")
    handle = api.open_run(api.RunConfig(scale=scale))
    sim = handle.simulation
    print(
        f"  {len(sim.population):,} domains, {len(sim.fleet.units):,} hosting "
        f"units, {len(sim.fleet.all_ips):,} addresses"
    )
    print("Running the four-month campaign (simulated 2021-10-11 to 2022-02-14) ...")
    result = handle.run()
    print(
        f"  initial sweep: {len(result.initial.ip_records):,} addresses probed, "
        f"{len(result.initial.vulnerable_ips()):,} vulnerable"
    )
    print(f"  longitudinal rounds: {len(result.rounds)}")
    print()

    print(render_table1(build_table1(sim.population)), end="\n\n")
    print(render_table3(build_table3(sim.population, result.initial)), end="\n\n")
    print(render_table4(build_table4(sim.population, result.initial)), end="\n\n")
    print(render_table7(build_table7(result.initial)), end="\n\n")
    print(render_figure2(build_figure2(sim)), end="\n\n")
    print(render_figure5(build_figure5(sim)), end="\n\n")
    print(render_figure7(build_figure7(sim)), end="\n\n")
    print(render_notification_funnel(build_notification_funnel(sim)))


if __name__ == "__main__":
    main()
